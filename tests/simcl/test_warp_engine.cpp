// Differential suite for warp-batched execution (warp.hpp, DESIGN.md §13):
// a kernel's `body_warp` must be observationally identical to its scalar
// `body` — same output bytes and the same KernelStats, including the
// order-sensitive L1 miss count. Synthetic kernels cover the engine
// semantics (dispatch preference, ragged lane masking, lockstep barriers,
// the SIMCL_WARP knob, pool determinism); the pipeline tests run every
// figure kernel of the sharpening pipeline in both modes and diff each
// launch event. Validation interop (scalar fallback) is covered at the
// bottom and skips outside SIMCL_CHECKED builds.
#include "simcl/warp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "image/generate.hpp"
#include "image/metrics.hpp"
#include "sharpen/sharpen.hpp"
#include "simcl/simcl.hpp"

namespace {

using namespace simcl;

/// Sets an environment variable for the lifetime of the guard.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

std::vector<std::uint8_t> bytes_of(const Buffer& b) {
  auto view = b.backing_as<std::uint8_t>();
  return {view.begin(), view.end()};
}

// --- engine dispatch semantics ----------------------------------------------

TEST(WarpDispatch, WarpBodyPreferredWhenEnabled) {
  Context ctx(amd_firepro_w8000());
  ctx.set_validation({});  // warp bodies must actually run
  Buffer out = ctx.create_buffer("out", 64 * sizeof(std::int32_t));
  Kernel k{.name = "which",
           .body =
               [&](WorkItem& it) {
                 auto o = it.global<std::int32_t>(out);
                 o.store(static_cast<std::size_t>(it.global_id(0)), 1);
               },
           .body_warp =
               [&](WarpItem& wp) {
                 auto o = wp.global<std::int32_t>(out);
                 for (int l = 0; l < wp.lane_count(); ++l) {
                   o.store(static_cast<std::size_t>(wp.global_x(l)), 2);
                 }
               }};
  ctx.engine().set_warp_enabled(true);  // independent of ambient SIMCL_WARP
  ctx.engine().run(k, {.global = NDRange(64), .local = NDRange(64)});
  EXPECT_EQ(out.backing_as<std::int32_t>()[0], 2);
  ctx.engine().set_warp_enabled(false);
  ctx.engine().run(k, {.global = NDRange(64), .local = NDRange(64)});
  EXPECT_EQ(out.backing_as<std::int32_t>()[0], 1);
}

TEST(WarpDispatch, EnvKnobDisablesWarpMode) {
  for (const char* off : {"0", "off", "false"}) {
    EnvGuard guard("SIMCL_WARP", off);
    Context ctx(amd_firepro_w8000());
    EXPECT_FALSE(ctx.engine().warp_enabled()) << off;
  }
  {
    EnvGuard guard("SIMCL_WARP", "1");
    Context ctx(amd_firepro_w8000());
    EXPECT_TRUE(ctx.engine().warp_enabled());
  }
  Context ctx(amd_firepro_w8000());  // default: enabled
  EXPECT_TRUE(ctx.engine().warp_enabled());
}

TEST(WarpDispatch, WarpOnlyKernelNeedsWarpMode) {
  Context ctx(amd_firepro_w8000());
  ctx.set_validation({});  // warp bodies must actually run
  Buffer out = ctx.create_buffer("out", 32 * sizeof(std::int32_t));
  Kernel k{.name = "warp_only",
           .body = {},
           .body_warp = [&](WarpItem& wp) {
             auto o = wp.global<std::int32_t>(out);
             for (int l = 0; l < wp.lane_count(); ++l) {
               o.store(static_cast<std::size_t>(wp.global_x(l)),
                       wp.global_x(l));
             }
           }};
  ctx.engine().set_warp_enabled(true);
  ctx.engine().run(k, {.global = NDRange(32), .local = NDRange(32)});
  EXPECT_EQ(out.backing_as<std::int32_t>()[31], 31);
  ctx.engine().set_warp_enabled(false);
  EXPECT_THROW(
      ctx.engine().run(k, {.global = NDRange(32), .local = NDRange(32)}),
      InvalidArgument);
}

TEST(WarpDispatch, LaneGeometryMatchesScalarIds) {
  // Every (lane, warp) coordinate must reproduce the scalar work-item ids.
  Context ctx(amd_firepro_w8000());
  ctx.set_validation({});  // warp bodies must actually run
  constexpr int kW = 72, kH = 10;  // ragged: 72 = 4*16 + 8
  Buffer out = ctx.create_buffer("ids", kW * kH * sizeof(std::int32_t));
  Kernel k{.name = "geom",
           .body = {},
           .body_warp = [&](WarpItem& wp) {
             EXPECT_EQ(wp.base_global_x() % kWarpWidth, 0);
             EXPECT_EQ(wp.active_mask(),
                       (WarpMask{1} << wp.lane_count()) - 1);
             auto o = wp.global<std::int32_t>(out);
             const int n = wp.lanes_below(kW);
             for (int l = 0; l < n; ++l) {
               EXPECT_EQ(wp.global_x(l), wp.base_global_x() + l);
               EXPECT_EQ(wp.flat_local_id(l),
                         wp.local_id_y() * wp.local_size(0) +
                             wp.base_local_x() + l);
               o.store(static_cast<std::size_t>(wp.global_y() * kW +
                                                wp.global_x(l)),
                       wp.global_y() * kW + wp.global_x(l));
             }
           }};
  ctx.engine().set_warp_enabled(true);
  ctx.engine().run(k, {.global = NDRange(80, kH), .local = NDRange(16, 2)});
  auto vals = out.backing_as<std::int32_t>();
  for (int i = 0; i < kW * kH; ++i) {
    EXPECT_EQ(vals[static_cast<std::size_t>(i)], i);
  }
}

// --- scalar/warp differential: synthetic kernels ----------------------------

/// Runs `k` in scalar then warp mode on the same engine and expects
/// identical stats; `reset` reinitializes the kernel's buffers between
/// runs and `snapshot` captures the output bytes.
template <typename Reset, typename Snapshot>
void expect_modes_identical(Context& ctx, const Kernel& k,
                            const LaunchConfig& cfg, Reset reset,
                            Snapshot snapshot) {
  reset();
  ctx.engine().set_warp_enabled(false);
  const KernelStats scalar = ctx.engine().run(k, cfg);
  const auto scalar_out = snapshot();
  reset();
  ctx.engine().set_warp_enabled(true);
  const KernelStats warp = ctx.engine().run(k, cfg);
  const auto warp_out = snapshot();
  EXPECT_TRUE(scalar == warp)
      << "KernelStats diverge between scalar and warp mode";
  EXPECT_EQ(scalar_out, warp_out);
}

TEST(WarpDifferential, SpanKernelAcrossRaggedWidths) {
  Context ctx(amd_firepro_w8000());
  ctx.set_validation({});  // warp bodies must actually run
  for (int w : {1, 5, 16, 17, 31, 32, 100, 255}) {
    const int h = 3;
    Buffer a = ctx.create_buffer("a", static_cast<std::size_t>(w * h) *
                                          sizeof(float));
    Buffer out = ctx.create_buffer("o", static_cast<std::size_t>(w * h) *
                                            sizeof(float));
    {
      auto vals = a.backing_as<float>();
      std::iota(vals.begin(), vals.end(), 0.0f);
    }
    Kernel k{.name = "scale",
             .body =
                 [&, w](WorkItem& it) {
                   const int x = it.global_id(0);
                   const int y = it.global_id(1);
                   if (x >= w) {
                     return;
                   }
                   auto in = it.global<const float>(a);
                   auto o = it.global<float>(out);
                   const std::size_t i = static_cast<std::size_t>(y * w + x);
                   o.store(i, in.load(i) * 2.0f);
                   it.alu(3);
                 },
             .body_warp =
                 [&, w](WarpItem& wp) {
                   const int n = wp.lanes_below(w);
                   if (n == 0) {
                     return;
                   }
                   auto in = wp.global<const float>(a);
                   auto o = wp.global<float>(out);
                   const std::size_t i0 = static_cast<std::size_t>(
                       wp.global_y() * w + wp.base_global_x());
                   const std::size_t sn = static_cast<std::size_t>(n);
                   const std::uint64_t un = static_cast<std::uint64_t>(n);
                   const float* ip = in.load_span(i0, sn, un, 4 * un);
                   float* op = o.store_span(i0, sn, un, 4 * un);
                   for (int l = 0; l < n; ++l) {
                     op[l] = ip[l] * 2.0f;
                   }
                   wp.alu(3 * un);
                 }};
    const LaunchConfig cfg{
        .global = NDRange(static_cast<std::size_t>((w + 15) / 16 * 16),
                          static_cast<std::size_t>(h)),
        .local = NDRange(16, 1)};
    expect_modes_identical(
        ctx, k, cfg,
        [&] {
          auto vals = out.backing_as<float>();
          std::fill(vals.begin(), vals.end(), -1.0f);
        },
        [&] { return bytes_of(out); });
  }
}

TEST(WarpDifferential, BarrierKernelStaysInLockstepAcrossWarps) {
  // Neighbor exchange through LDS: item lid reads the slot written by
  // lid+1 — which lives in ANOTHER warp for lanes 15, 31, ... — so this
  // fails unless warps observe barrier semantics, and it checks the
  // barrier_events accounting (once per group).
  Context ctx(amd_firepro_w8000());
  ctx.set_validation({});  // warp bodies must actually run
  constexpr int kLocal = 64, kGroups = 3;
  Buffer out = ctx.create_buffer(
      "out", static_cast<std::size_t>(kLocal * kGroups) *
                 sizeof(std::int32_t));
  Kernel k{.name = "neighbor",
           .uses_barriers = true,
           .body =
               [&](WorkItem& it) {
                 auto lds = it.local_array<std::int32_t>(kLocal);
                 const auto lid = static_cast<std::size_t>(it.local_id(0));
                 lds.store(lid, it.global_id(0) * 10);
                 it.barrier();
                 auto o = it.global<std::int32_t>(out);
                 o.store(static_cast<std::size_t>(it.global_id(0)),
                         lds.load((lid + 1) % kLocal));
               },
           .body_warp =
               [&](WarpItem& wp) {
                 auto lds = wp.local_array<std::int32_t>(kLocal);
                 for (int l = 0; l < wp.lane_count(); ++l) {
                   lds.store(static_cast<std::size_t>(wp.base_local_x() + l),
                             wp.global_x(l) * 10);
                 }
                 wp.barrier();
                 auto o = wp.global<std::int32_t>(out);
                 for (int l = 0; l < wp.lane_count(); ++l) {
                   const auto lid =
                       static_cast<std::size_t>(wp.base_local_x() + l);
                   o.store(static_cast<std::size_t>(wp.global_x(l)),
                           lds.load((lid + 1) % kLocal));
                 }
               }};
  const LaunchConfig cfg{.global = NDRange(kLocal * kGroups),
                         .local = NDRange(kLocal)};
  expect_modes_identical(
      ctx, k, cfg,
      [&] {
        auto vals = out.backing_as<std::int32_t>();
        std::fill(vals.begin(), vals.end(), -1);
      },
      [&] { return bytes_of(out); });
  ctx.engine().set_warp_enabled(true);
  const KernelStats s = ctx.engine().run(k, cfg);
  EXPECT_EQ(s.barrier_events, kGroups);
  auto vals = out.backing_as<std::int32_t>();
  for (int g = 0; g < kGroups; ++g) {
    for (int i = 0; i < kLocal; ++i) {
      EXPECT_EQ(vals[static_cast<std::size_t>(g * kLocal + i)],
                (g * kLocal + (i + 1) % kLocal) * 10);
    }
  }
}

TEST(WarpDifferential, AtomicsAndVectorAccessesMatch) {
  Context ctx(amd_firepro_w8000());
  ctx.set_validation({});  // warp bodies must actually run
  constexpr int kN = 96;  // 96/4 = 24 quads: ragged against 16-wide warps
  Buffer a = ctx.create_buffer("a", kN * sizeof(float));
  Buffer out = ctx.create_buffer("o", kN * sizeof(float));
  Buffer sum = ctx.create_buffer("s", sizeof(std::int32_t));
  {
    auto vals = a.backing_as<float>();
    std::iota(vals.begin(), vals.end(), 1.0f);
  }
  Kernel k{.name = "vec_atomic",
           .body =
               [&](WorkItem& it) {
                 auto in = it.global<const float>(a);
                 auto o = it.global<float>(out);
                 auto s = it.global<std::int32_t>(sum);
                 const auto i = static_cast<std::size_t>(it.global_id(0)) * 4;
                 o.vstore4(in.vload4(i) * 2.0f, i);
                 s.atomic_add(0, it.global_id(0));
               },
           .body_warp =
               [&](WarpItem& wp) {
                 auto in = wp.global<const float>(a);
                 auto o = wp.global<float>(out);
                 auto s = wp.global<std::int32_t>(sum);
                 const int n = wp.lane_count();
                 const std::size_t i0 =
                     static_cast<std::size_t>(wp.base_global_x()) * 4;
                 const std::size_t sn = static_cast<std::size_t>(n);
                 const std::uint64_t un = static_cast<std::uint64_t>(n);
                 const float* ip = in.load_span(i0, 4 * sn, un, 16 * un);
                 float* op = o.store_span(i0, 4 * sn, un, 16 * un);
                 for (int j = 0; j < 4 * n; ++j) {
                   op[j] = ip[j] * 2.0f;
                 }
                 for (int l = 0; l < n; ++l) {
                   s.atomic_add(0, wp.global_x(l));
                 }
               }};
  const LaunchConfig cfg{.global = NDRange(kN / 4), .local = NDRange(8)};
  expect_modes_identical(
      ctx, k, cfg,
      [&] {
        auto vals = out.backing_as<float>();
        std::fill(vals.begin(), vals.end(), 0.0f);
        sum.backing_as<std::int32_t>()[0] = 0;
      },
      [&] {
        auto b = bytes_of(out);
        const auto extra = bytes_of(sum);
        b.insert(b.end(), extra.begin(), extra.end());
        return b;
      });
}

TEST(WarpDifferential, StatsDeterministicAcrossThreadCounts) {
  // The persistent worker pool must not change accounting: warp stats and
  // outputs are identical no matter how many host threads run the groups.
  auto run_with = [](int threads) {
    Context ctx(amd_firepro_w8000(), intel_core_i5_3470(), threads);
    ctx.set_validation({});
    Buffer out = ctx.create_buffer("o", 4096 * sizeof(float));
    Kernel k{.name = "scale",
             .body =
                 [&](WorkItem& it) {
                   auto o = it.global<float>(out);
                   const auto i = static_cast<std::size_t>(it.global_id(0));
                   o.store(i, static_cast<float>(i) * 0.5f);
                   it.alu(2);
                 },
             .body_warp =
                 [&](WarpItem& wp) {
                   auto o = wp.global<float>(out);
                   const int n = wp.lane_count();
                   const std::size_t i0 =
                       static_cast<std::size_t>(wp.base_global_x());
                   const std::uint64_t un = static_cast<std::uint64_t>(n);
                   float* op = o.store_span(i0, static_cast<std::size_t>(n),
                                            un, 4 * un);
                   for (int l = 0; l < n; ++l) {
                     op[l] = static_cast<float>(i0 + static_cast<std::size_t>(
                                                         l)) *
                             0.5f;
                   }
                   wp.alu(2 * un);
                 }};
    KernelStats s = ctx.engine().run(
        k, {.global = NDRange(4096), .local = NDRange(64)});
    return std::pair{s, bytes_of(out)};
  };
  const auto [s1, b1] = run_with(1);
  const auto [s4, b4] = run_with(4);
  EXPECT_TRUE(s1 == s4);
  EXPECT_EQ(b1, b4);
  // Repeated multi-threaded launches on one engine reuse the pool and stay
  // deterministic.
  const auto [s4b, b4b] = run_with(4);
  EXPECT_TRUE(s4 == s4b);
  EXPECT_EQ(b4, b4b);
}

TEST(WarpDifferential, WarpAccessorFaultsPropagate) {
  Context ctx(amd_firepro_w8000());
  ctx.set_validation({});  // warp bodies must actually run
  Buffer small = ctx.create_buffer("small", 16 * sizeof(float));
  Kernel k{.name = "oob_warp",
           .body = [&](WorkItem&) {},
           .body_warp = [&](WarpItem& wp) {
             auto p = wp.global<float>(small);
             (void)p.load_span(8, 16, 16, 64);  // past the end
           }};
  ctx.engine().set_warp_enabled(true);
  EXPECT_THROW(
      ctx.engine().run(k, {.global = NDRange(16), .local = NDRange(16)}),
      Error);
}

// --- scalar/warp differential: the full figure pipelines --------------------

struct PipelineRun {
  std::vector<Event> kernel_events;
  sharp::img::ImageU8 output;
};

PipelineRun run_pipeline(const sharp::PipelineOptions& opts,
                         const sharp::img::ImageU8& input, bool warp) {
  EnvGuard guard("SIMCL_WARP", warp ? "1" : "0");
  sharp::GpuPipeline pipeline(opts);
  sharp::PipelineResult r = pipeline.run(input);
  PipelineRun out{.kernel_events = {}, .output = std::move(r.output)};
  for (const Event& ev : pipeline.last_events()) {
    if (ev.kind == CommandKind::kKernel) {
      out.kernel_events.push_back(ev);
    }
  }
  return out;
}

void expect_pipeline_modes_identical(const sharp::PipelineOptions& opts,
                                     int w, int h) {
  const sharp::img::ImageU8 input = sharp::img::make_natural(w, h, 1234);
  const PipelineRun scalar = run_pipeline(opts, input, false);
  const PipelineRun warp = run_pipeline(opts, input, true);
  EXPECT_EQ(sharp::img::max_abs_diff(scalar.output, warp.output), 0);
  ASSERT_EQ(scalar.kernel_events.size(), warp.kernel_events.size());
  for (std::size_t i = 0; i < scalar.kernel_events.size(); ++i) {
    const Event& se = scalar.kernel_events[i];
    const Event& we = warp.kernel_events[i];
    EXPECT_EQ(se.name, we.name);
    EXPECT_TRUE(se.stats == we.stats)
        << "stats diverge for kernel '" << se.name << "' (launch " << i
        << ") at " << w << "x" << h;
  }
}

// Option sets chosen so every GPU kernel of the pipeline (all 18 warp
// ports in sharpen/src/gpu/kernels.cpp) is exercised at least once.
sharp::PipelineOptions opts_naive() { return sharp::PipelineOptions::naive(); }

sharp::PipelineOptions opts_optimized_tree() {
  sharp::PipelineOptions o = sharp::PipelineOptions::optimized();
  o.reduction_stage2 = sharp::Placement::kGpu;  // reduce_stage2 tree kernel
  return o;
}

sharp::PipelineOptions opts_lut_atomic_unroll2() {
  sharp::PipelineOptions o = sharp::PipelineOptions::optimized();
  o.strength = sharp::StrengthEval::kLut;
  o.unroll = sharp::ReductionUnroll::kTwo;
  o.reduction_stage2 = sharp::Placement::kGpu;
  o.stage2_method = sharp::Stage2Method::kAtomic;
  return o;
}

sharp::PipelineOptions opts_split_lds_border() {
  sharp::PipelineOptions o = sharp::PipelineOptions::optimized();
  o.fuse_sharpness = false;  // perror / preliminary / overshoot
  o.sobel_impl = sharp::SobelImpl::kLds;
  o.border = sharp::Placement::kGpu;
  o.unroll = sharp::ReductionUnroll::kNone;
  o.strength = sharp::StrengthEval::kLut;  // preliminary's LUT gather
  return o;
}

sharp::PipelineOptions opts_images() {
  sharp::PipelineOptions o = sharp::PipelineOptions::optimized();
  o.use_image2d = true;  // downscale_img / sobel_img / sharpness_fused_img
  return o;
}

sharp::PipelineOptions opts_fused_scalar() {
  sharp::PipelineOptions o = sharp::PipelineOptions::optimized();
  o.vectorize = false;  // center/sobel scalar + sharpness_fused_scalar
  return o;
}

TEST(WarpPipelineDifferential, NaivePipeline) {
  expect_pipeline_modes_identical(opts_naive(), 64, 48);
  expect_pipeline_modes_identical(opts_naive(), 132, 76);  // ragged warps
}

TEST(WarpPipelineDifferential, OptimizedPipelineWithTreeStage2) {
  expect_pipeline_modes_identical(opts_optimized_tree(), 64, 48);
  expect_pipeline_modes_identical(opts_optimized_tree(), 132, 76);
}

TEST(WarpPipelineDifferential, LutAtomicUnrolledReduction) {
  expect_pipeline_modes_identical(opts_lut_atomic_unroll2(), 64, 48);
  expect_pipeline_modes_identical(opts_lut_atomic_unroll2(), 132, 76);
}

TEST(WarpPipelineDifferential, SplitStagesLdsSobelGpuBorder) {
  expect_pipeline_modes_identical(opts_split_lds_border(), 64, 48);
  expect_pipeline_modes_identical(opts_split_lds_border(), 132, 76);
}

TEST(WarpPipelineDifferential, ImageBackedKernels) {
  expect_pipeline_modes_identical(opts_images(), 64, 48);
  expect_pipeline_modes_identical(opts_images(), 132, 76);
}

TEST(WarpPipelineDifferential, FusedScalarSharpness) {
  expect_pipeline_modes_identical(opts_fused_scalar(), 64, 48);
  expect_pipeline_modes_identical(opts_fused_scalar(), 132, 76);
}

// --- validation interop -----------------------------------------------------

class WarpValidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!checked_build()) {
      GTEST_SKIP() << "requires a SIMCL_CHECKED build";
    }
    ctx.emplace(amd_firepro_w8000());
    ctx->set_validation(ValidationSettings::full());
  }

  std::optional<Context> ctx;
};

TEST_F(WarpValidationTest, ActiveValidationFallsBackToScalarBody) {
  // The warp body is poisoned: if the engine ran it under validation the
  // launch would fault. Instead the engine must run the scalar body (so
  // the checkers see exact per-work-item identity) and count the fallback.
  Buffer out = ctx->create_buffer("out", 64 * sizeof(std::int32_t));
  Kernel k{.name = "fallback",
           .body =
               [&](WorkItem& it) {
                 auto o = it.global<std::int32_t>(out);
                 o.store(static_cast<std::size_t>(it.global_id(0)),
                         it.global_id(0));
               },
           .body_warp = [](WarpItem&) {
             throw KernelFault("body_warp must not run under validation");
           }};
  ctx->engine().set_warp_enabled(true);
  EXPECT_EQ(ctx->engine().warp_fallback_launches(), 0u);
  ctx->engine().run(k, {.global = NDRange(64), .local = NDRange(64)});
  EXPECT_EQ(ctx->engine().warp_fallback_launches(), 1u);
  auto vals = out.backing_as<std::int32_t>();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(vals[static_cast<std::size_t>(i)], i);
  }
}

TEST_F(WarpValidationTest, SeededRaceStillAttributedWithWarpBodyPresent) {
  // A racing kernel that also carries a (poisoned) warp body: validation
  // must still catch the race via the scalar path.
  Buffer cell = ctx->create_buffer("cell", sizeof(std::int32_t));
  Kernel k{.name = "seeded_race",
           .body =
               [&](WorkItem& it) {
                 auto p = it.global<std::int32_t>(cell);
                 p.store(0, it.global_id(0));  // every item writes slot 0
               },
           .body_warp = [](WarpItem&) {
             throw KernelFault("body_warp must not run under validation");
           }};
  EXPECT_THROW(
      ctx->engine().run(k, {.global = NDRange(64), .local = NDRange(64)}),
      Error);
}

}  // namespace
