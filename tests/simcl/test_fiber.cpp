// Fiber backend tests: the correctness of everything barrier-related rests
// on this context switcher, so it gets stress-tested directly.
#include "simcl/fiber.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "simcl/error.hpp"

namespace {

using simcl::Fiber;
using simcl::FiberStackPool;

struct Counter {
  Fiber* fiber = nullptr;
  std::vector<int>* log = nullptr;
  int id = 0;
  int yields = 0;
};

void counting_entry(void* arg) {
  auto* c = static_cast<Counter*>(arg);
  for (int i = 0; i < c->yields; ++i) {
    c->log->push_back(c->id * 100 + i);
    c->fiber->yield();
  }
  c->log->push_back(c->id * 100 + 99);
}

TEST(Fiber, SingleFiberRunsToCompletion) {
  FiberStackPool pool(1);
  std::vector<int> log;
  Counter c;
  Fiber f;
  c.fiber = &f;
  c.log = &log;
  c.id = 1;
  c.yields = 0;
  f.reset(pool.stack(0), pool.stack_bytes(), &counting_entry, &c);
  EXPECT_FALSE(f.started());
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 199);
}

TEST(Fiber, YieldReturnsControlInOrder) {
  FiberStackPool pool(1);
  std::vector<int> log;
  Counter c;
  Fiber f;
  c.fiber = &f;
  c.log = &log;
  c.id = 3;
  c.yields = 2;
  f.reset(pool.stack(0), pool.stack_bytes(), &counting_entry, &c);
  f.resume();
  EXPECT_FALSE(f.finished());
  log.push_back(-1);
  f.resume();
  log.push_back(-2);
  f.resume();
  EXPECT_TRUE(f.finished());
  const std::vector<int> expect{300, -1, 301, -2, 399};
  EXPECT_EQ(log, expect);
}

TEST(Fiber, RoundRobinInterleavesManyFibers) {
  constexpr int kFibers = 64;
  constexpr int kYields = 5;
  FiberStackPool pool(kFibers);
  std::vector<int> log;
  std::vector<Counter> counters(kFibers);
  std::vector<Fiber> fibers(kFibers);
  for (int i = 0; i < kFibers; ++i) {
    counters[i] = {&fibers[i], &log, i, kYields};
    fibers[i].reset(pool.stack(static_cast<std::size_t>(i)),
                    pool.stack_bytes(), &counting_entry, &counters[i]);
  }
  int active = kFibers;
  while (active > 0) {
    for (auto& f : fibers) {
      if (!f.finished()) {
        f.resume();
        if (f.finished()) {
          --active;
        }
      }
    }
  }
  // Every fiber logged kYields + 1 entries, strictly interleaved by round.
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kFibers * (kYields + 1)));
  for (int round = 0; round < kYields; ++round) {
    for (int i = 0; i < kFibers; ++i) {
      EXPECT_EQ(log[static_cast<std::size_t>(round * kFibers + i)],
                i * 100 + round);
    }
  }
}

// Uses the FPU and varargs inside a fiber: crashes here would indicate a
// stack-alignment bug in the context switch (movaps faults).
void fpu_entry(void* arg) {
  auto* out = static_cast<double*>(arg);
  double acc = 0.0;
  for (int i = 1; i <= 100; ++i) {
    acc += std::sqrt(static_cast<double>(i));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", acc);
  *out = acc;
}

TEST(Fiber, StackIsAbiAlignedForFpuAndVarargs) {
  FiberStackPool pool(1);
  double result = 0.0;
  Fiber f;
  f.reset(pool.stack(0), pool.stack_bytes(), &fpu_entry, &result);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_NEAR(result, 671.4629, 1e-3);
}

TEST(Fiber, ResetAllowsStackReuse) {
  FiberStackPool pool(1);
  std::vector<int> log;
  for (int round = 0; round < 50; ++round) {
    Counter c;
    Fiber f;
    c.fiber = &f;
    c.log = &log;
    c.id = round;
    c.yields = 1;
    f.reset(pool.stack(0), pool.stack_bytes(), &counting_entry, &c);
    f.resume();
    f.resume();
    ASSERT_TRUE(f.finished());
  }
  EXPECT_EQ(log.size(), 100u);
}

TEST(Fiber, ResumingFinishedFiberThrows) {
  FiberStackPool pool(1);
  double result = 0.0;
  Fiber f;
  f.reset(pool.stack(0), pool.stack_bytes(), &fpu_entry, &result);
  f.resume();
  ASSERT_TRUE(f.finished());
  EXPECT_THROW(f.resume(), simcl::KernelFault);
}

TEST(FiberStackPool, RejectsInvalidGeometry) {
  EXPECT_THROW(FiberStackPool(0), simcl::InvalidArgument);
  EXPECT_THROW(FiberStackPool(4, 128), simcl::InvalidArgument);
}

TEST(FiberStackPool, StacksAreDisjointAndAligned) {
  FiberStackPool pool(8, 8192);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto addr = reinterpret_cast<std::uintptr_t>(pool.stack(i));
    EXPECT_EQ(addr % 64, 0u);
    if (i > 0) {
      const auto prev = reinterpret_cast<std::uintptr_t>(pool.stack(i - 1));
      EXPECT_EQ(addr - prev, 8192u);
    }
  }
  EXPECT_THROW(pool.stack(8), simcl::InvalidArgument);
}

}  // namespace
