// Cost model tests: the *relationships* the paper's figures depend on must
// hold structurally (launch overhead dominates small kernels, map vs
// read/write crossover, barrier cost grows with barrier count, ...).
#include "simcl/cost_model.hpp"

#include <gtest/gtest.h>

#include "simcl/device.hpp"

namespace {

using namespace simcl;

class CostModelTest : public ::testing::Test {
 protected:
  CostModel model{amd_firepro_w8000(), intel_core_i5_3470()};
};

KernelStats make_stats(std::uint64_t items, std::uint64_t alu_per_item,
                       std::uint64_t accesses_per_item,
                       std::uint64_t miss_lines) {
  KernelStats s;
  s.work_items = items;
  s.work_groups = std::max<std::uint64_t>(1, items / 256);
  s.alu_ops = items * alu_per_item;
  s.global_loads = items * accesses_per_item;
  s.global_load_bytes = s.global_loads * 4;
  s.l1_miss_lines = miss_lines;
  return s;
}

TEST_F(CostModelTest, LaunchOverheadDominatesTinyKernels) {
  const KernelStats tiny = make_stats(64, 10, 2, 8);
  const double t = model.kernel_time_us(tiny);
  EXPECT_GE(t, model.device().kernel_launch_us);
  EXPECT_LT(t, model.device().kernel_launch_us * 1.1);
}

TEST_F(CostModelTest, KernelTimeScalesWithWork) {
  const double t1 = model.kernel_time_us(make_stats(1 << 16, 20, 8, 4096));
  const double t2 = model.kernel_time_us(make_stats(1 << 24, 20, 8, 1 << 20));
  EXPECT_GT(t2, t1 * 10);
}

TEST_F(CostModelTest, RooflineTakesTheBindingResource) {
  // Access-bound kernel: huge issue count, little ALU.
  KernelStats bound = make_stats(1 << 22, 1, 16, 0);
  const double t_access = model.kernel_time_us(bound);
  // Same kernel vectorized: 1/4 the issue slots.
  KernelStats vec = make_stats(1 << 22, 1, 4, 0);
  const double t_vec = model.kernel_time_us(vec);
  EXPECT_GT(t_access, t_vec * 2.0);
}

TEST_F(CostModelTest, DramMissesCost) {
  KernelStats hits = make_stats(1 << 20, 4, 4, 1 << 10);
  KernelStats misses = make_stats(1 << 20, 4, 4, 1 << 22);
  EXPECT_GT(model.kernel_time_us(misses), model.kernel_time_us(hits) * 5);
}

TEST_F(CostModelTest, BarriersAddTime) {
  KernelStats base = make_stats(1 << 20, 16, 2, 1 << 12);
  KernelStats barried = base;
  barried.barrier_events = barried.work_groups * 8;
  EXPECT_GT(model.kernel_time_us(barried), model.kernel_time_us(base));
}

TEST_F(CostModelTest, DivergencePenalizesOnlyDivergentFraction) {
  // Zero the flat divergent-kernel overhead so the *scaling* term is
  // isolated.
  DeviceSpec gpu = amd_firepro_w8000();
  gpu.divergent_kernel_overhead_us = 0.0;
  CostModel m(gpu, intel_core_i5_3470());
  KernelStats s = make_stats(1 << 20, 100, 1, 1 << 10);
  const double base = m.kernel_time_us(s, 4.0);
  s.divergent_items = s.work_items / 2;
  const double half = m.kernel_time_us(s, 4.0);
  s.divergent_items = s.work_items;
  const double full = m.kernel_time_us(s, 4.0);
  EXPECT_GT(half, base);
  EXPECT_GT(full, half);
  // Execution time (net of launch overhead) scales by the full factor
  // when every item diverges.
  const double launch = gpu.kernel_launch_us;
  EXPECT_NEAR((full - launch) / (base - launch), 4.0, 0.2);
}

TEST_F(CostModelTest, MapBeatsBulkForSmallBuffersOnly) {
  // The paper (Fig. 14 discussion): map/unmap is effective at small data
  // sizes; read/write wins as data grows.
  const std::size_t small = 16 * 1024;
  EXPECT_LT(model.mapped_transfer_us(small), model.bulk_transfer_us(small));
  const std::size_t large = 64 * 1024 * 1024;
  EXPECT_GT(model.mapped_transfer_us(large), model.bulk_transfer_us(large));
}

TEST_F(CostModelTest, RectTransferAddsPerRowCost) {
  const std::size_t bytes = 1 << 20;
  const double bulk = model.bulk_transfer_us(bytes);
  const double rect_few = model.rect_transfer_us(bytes, 16);
  const double rect_many = model.rect_transfer_us(bytes, 4096);
  EXPECT_GT(rect_few, bulk);
  EXPECT_GT(rect_many, rect_few);
}

TEST_F(CostModelTest, HostComputeUsesCpuRoofline) {
  const simcl::DeviceSpec& cpu = model.host();
  // Pure-compute work lands exactly on the effective ALU rate.
  const double flops = 4.04e7;
  const double t = model.host_compute_us({.flops = flops, .bytes = 0.0});
  EXPECT_NEAR(t, flops / cpu.alu_ops_per_us(), 1e-6);
  // Memory-bound host work lands on the effective bandwidth.
  const double bytes = 2e7;
  const double tm = model.host_compute_us({.flops = 0.0, .bytes = bytes});
  EXPECT_NEAR(tm, bytes / cpu.mem_bytes_per_us(), 1e-6);
  // Fixed cost floors everything.
  const double tf = model.host_compute_us({.fixed_us = 5.0});
  EXPECT_DOUBLE_EQ(tf, 5.0);
}

TEST_F(CostModelTest, GpuBeatsCpuOnBigUniformWork) {
  // Sanity for the headline Fig. 12 shape: the same logical work costs
  // far less on the W8000 model than on the i5 model.
  const double flops = 1e9;
  KernelStats s;
  s.work_items = 1 << 20;
  s.work_groups = 1 << 12;
  s.alu_ops = static_cast<std::uint64_t>(flops);
  const double gpu = model.kernel_time_us(s);
  const double cpu = model.host_compute_us({.flops = flops});
  EXPECT_GT(cpu / gpu, 10.0);
}

TEST(DeviceSpecTest, PresetsMatchTableI) {
  const DeviceSpec gpu = amd_firepro_w8000();
  EXPECT_DOUBLE_EQ(gpu.clock_ghz, 0.88);
  EXPECT_EQ(gpu.lanes, 1792);
  EXPECT_DOUBLE_EQ(gpu.peak_gflops, 3230.0);
  EXPECT_DOUBLE_EQ(gpu.mem_bandwidth_gbps, 176.0);
  EXPECT_FALSE(gpu.is_cpu);

  const DeviceSpec cpu = intel_core_i5_3470();
  EXPECT_DOUBLE_EQ(cpu.clock_ghz, 3.2);
  EXPECT_EQ(cpu.compute_units, 4);
  EXPECT_DOUBLE_EQ(cpu.peak_gflops, 57.76);
  EXPECT_DOUBLE_EQ(cpu.mem_bandwidth_gbps, 25.0);
  EXPECT_TRUE(cpu.is_cpu);
}

}  // namespace
