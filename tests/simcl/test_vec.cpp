// Vec4 and OpenCL built-in analogues.
#include "simcl/vec.hpp"

#include <gtest/gtest.h>

namespace {

using namespace simcl;

TEST(Vec4, ConstructionAndIndexing) {
  float4 v{1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_EQ(v[0], 1.0f);
  EXPECT_EQ(v[3], 4.0f);
  v[2] = 9.0f;
  EXPECT_EQ(v.z, 9.0f);
  float4 splat(5.0f);
  EXPECT_EQ(splat, (float4{5.0f, 5.0f, 5.0f, 5.0f}));
}

TEST(Vec4, Arithmetic) {
  const float4 a{1, 2, 3, 4};
  const float4 b{10, 20, 30, 40};
  EXPECT_EQ(a + b, (float4{11, 22, 33, 44}));
  EXPECT_EQ(b - a, (float4{9, 18, 27, 36}));
  EXPECT_EQ(a * b, (float4{10, 40, 90, 160}));
  EXPECT_EQ(a * 2.0f, (float4{2, 4, 6, 8}));
  EXPECT_EQ(2.0f * a, a * 2.0f);
  float4 acc{0, 0, 0, 0};
  acc += a;
  acc += a;
  EXPECT_EQ(acc, a * 2.0f);
}

TEST(Vec4, IntegerVariant) {
  const int4 a{1, -2, 3, -4};
  EXPECT_EQ(cl_abs(a), (int4{1, 2, 3, 4}));
  EXPECT_EQ(a + a, (int4{2, -4, 6, -8}));
}

TEST(Vec4, Conversion) {
  const uchar4 u{0, 128, 200, 255};
  const float4 f = convert4<float>(u);
  EXPECT_EQ(f, (float4{0.0f, 128.0f, 200.0f, 255.0f}));
  const int4 i = convert4<std::int32_t>(f);
  EXPECT_EQ(i, (int4{0, 128, 200, 255}));
}

TEST(Builtins, ClampScalarAndVector) {
  EXPECT_EQ(cl_clamp(5, 0, 10), 5);
  EXPECT_EQ(cl_clamp(-5, 0, 10), 0);
  EXPECT_EQ(cl_clamp(50, 0, 10), 10);
  EXPECT_EQ(cl_clamp(float4{-1, 0.5f, 2, 300}, 0.0f, 255.0f),
            (float4{0, 0.5f, 2, 255}));
}

TEST(Builtins, MadMatchesMulAdd) {
  EXPECT_FLOAT_EQ(cl_mad(2.0f, 3.0f, 4.0f), 10.0f);
  const float4 r = cl_mad(float4{1, 2, 3, 4}, float4(2.0f), float4(1.0f));
  EXPECT_EQ(r, (float4{3, 5, 7, 9}));
}

TEST(Builtins, Select) {
  EXPECT_EQ(cl_select(1, 2, true), 2);
  EXPECT_EQ(cl_select(1, 2, false), 1);
}

TEST(Builtins, MinMaxVector) {
  const float4 a{1, 5, 3, 7};
  const float4 b{2, 4, 6, 0};
  EXPECT_EQ(cl_max(a, b), (float4{2, 5, 6, 7}));
  EXPECT_EQ(cl_min(a, b), (float4{1, 4, 3, 0}));
}

}  // namespace
