// The checked-execution layer (validation.hpp): seeded out-of-bounds,
// racing and leaked-object kernels must be caught with correct attribution
// (kernel name, work-item id, byte offset), the unmodified pipeline must
// run clean under full validation, and checked/unchecked runs must produce
// bit-identical results. Most of these tests require a SIMCL_CHECKED build
// and skip themselves otherwise.
#include "simcl/validation.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "simcl/queue.hpp"

namespace {

using namespace simcl;

class ValidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!checked_build()) {
      GTEST_SKIP() << "requires a SIMCL_CHECKED build";
    }
    ctx.emplace(amd_firepro_w8000());
    ctx->set_validation(ValidationSettings::full());
  }

  std::optional<Context> ctx;
};

// --- settings parsing -------------------------------------------------------

TEST(ValidationSettingsTest, ParseRecognizesOnOffAndTokenLists) {
  EXPECT_FALSE(ValidationSettings::parse(nullptr).any());
  EXPECT_FALSE(ValidationSettings::parse("").any());
  EXPECT_FALSE(ValidationSettings::parse("0").any());
  EXPECT_FALSE(ValidationSettings::parse("off").any());

  const ValidationSettings full = ValidationSettings::parse("1");
  EXPECT_TRUE(full.bounds && full.races && full.lifetime);
  EXPECT_TRUE(ValidationSettings::parse("FULL").races);

  const ValidationSettings some = ValidationSettings::parse("bounds,lifetime");
  EXPECT_TRUE(some.bounds);
  EXPECT_FALSE(some.races);
  EXPECT_TRUE(some.lifetime);
  EXPECT_TRUE(ValidationSettings::parse(" races ").races);

  EXPECT_THROW((void)ValidationSettings::parse("bonds"), InvalidArgument);
}

// --- bounds attribution -----------------------------------------------------

TEST_F(ValidationTest, OutOfBoundsIsAttributedToKernelItemAndOffset) {
  Buffer buf = ctx->create_buffer("victim", 16 * sizeof(float));
  Kernel k{.name = "seeded_oob",
           .body = [&](WorkItem& it) {
             auto p = it.global<float>(buf);
             if (it.global_id(0) == 3) {
               p.store(100, 1.0f);  // elements 0..15 are valid
             }
           }};
  try {
    ctx->engine().run(k, {.global = NDRange(8), .local = NDRange(4)});
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    const Violation& v = e.violation();
    EXPECT_EQ(v.kind, ViolationKind::kOutOfBounds);
    EXPECT_EQ(v.kernel, "seeded_oob");
    EXPECT_EQ(v.object, "victim");
    EXPECT_EQ(v.global_id[0], 3);
    EXPECT_EQ(v.global_id[1], 0);
    EXPECT_EQ(v.byte_offset, 100 * sizeof(float));
    EXPECT_EQ(v.bytes, sizeof(float));
    EXPECT_NE(e.what(), nullptr);
    EXPECT_NE(std::string(e.what()).find("seeded_oob"), std::string::npos);
  }
}

TEST_F(ValidationTest, NegativeIndexWrapIsCaughtNotWrappedPastTheCheck) {
  // Regression: a negative index cast to size_t made the old `i + n >
  // count` bounds test wrap around and pass, faulting on the raw access.
  Buffer buf = ctx->create_buffer("wrap", 16 * sizeof(float));
  Kernel k{.name = "negative_index",
           .body = [&](WorkItem& it) {
             auto p = it.global<float>(buf);
             const int idx = it.global_id(0) - 5;  // -5 for item 0
             p.store(static_cast<std::size_t>(idx), 1.0f);
           }};
  EXPECT_THROW(
      ctx->engine().run(k, {.global = NDRange(1), .local = NDRange(1)}),
      ValidationError);
}

TEST_F(ValidationTest, ImageWriteOutOfRangeIsAttributed) {
  Image2D img = ctx->create_image2d("canvas", ChannelFormat::kR_F32, 4, 4);
  Kernel k{.name = "seeded_image_oob",
           .body = [&](WorkItem& it) {
             auto im = it.image<float>(img);
             im.write(99, 0, 1.0f);
           }};
  try {
    ctx->engine().run(k, {.global = NDRange(1), .local = NDRange(1)});
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.violation().kind, ViolationKind::kOutOfBounds);
    EXPECT_EQ(e.violation().kernel, "seeded_image_oob");
    EXPECT_EQ(e.violation().object, "canvas");
  }
}

// --- race detection ---------------------------------------------------------

TEST_F(ValidationTest, WriteWriteRaceAcrossItemsIsDetected) {
  Buffer buf = ctx->create_buffer("shared", 16 * sizeof(std::int32_t));
  Kernel k{.name = "seeded_ww_race",
           .body = [&](WorkItem& it) {
             auto p = it.global<std::int32_t>(buf);
             p.store(0, it.global_id(0));  // every item writes element 0
           }};
  try {
    ctx->engine().run(k, {.global = NDRange(8), .local = NDRange(4)});
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    const Violation& v = e.violation();
    EXPECT_EQ(v.kind, ViolationKind::kWriteWriteRace);
    EXPECT_EQ(v.kernel, "seeded_ww_race");
    EXPECT_EQ(v.object, "shared");
    EXPECT_EQ(v.byte_offset, 0u);
    EXPECT_NE(v.global_id[0], v.other_id[0]);  // two distinct items
  }
}

TEST_F(ValidationTest, ReadWriteRaceAcrossItemsIsDetected) {
  Buffer buf = ctx->create_buffer("shared", 16 * sizeof(std::int32_t));
  Kernel k{.name = "seeded_rw_race",
           .body = [&](WorkItem& it) {
             auto p = it.global<std::int32_t>(buf);
             if (it.global_id(0) == 0) {
               p.store(1, 7);  // item 0 writes what the others read
             } else {
               (void)p.load(1);
             }
           }};
  try {
    ctx->engine().run(k, {.global = NDRange(4), .local = NDRange(4)});
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.violation().kind, ViolationKind::kReadWriteRace);
    EXPECT_EQ(e.violation().kernel, "seeded_rw_race");
  }
}

TEST_F(ValidationTest, DisjointWritesAndSharedReadsAreClean) {
  Buffer in = ctx->create_buffer("in", 64 * sizeof(std::int32_t));
  Buffer out = ctx->create_buffer("out", 64 * sizeof(std::int32_t));
  Kernel k{.name = "clean",
           .body = [&](WorkItem& it) {
             auto src = it.global<const std::int32_t>(in);
             auto dst = it.global<std::int32_t>(out);
             const auto i = static_cast<std::size_t>(it.global_id(0));
             // Every item reads a shared element plus its own; writes are
             // disjoint. No violation.
             dst.store(i, src.load(0) + src.load(i));
           }};
  EXPECT_NO_THROW(
      ctx->engine().run(k, {.global = NDRange(64), .local = NDRange(16)}));
}

TEST_F(ValidationTest, BarrierOrdersConflictingAccessesWithinAGroup) {
  Buffer buf = ctx->create_buffer("staged", 64 * sizeof(std::int32_t));
  // Phase 1: each item writes its own slot. Barrier. Phase 2: each item
  // reads its neighbour's slot — racy without the barrier, ordered with.
  Kernel k{.name = "staged",
           .uses_barriers = true,
           .body = [&](WorkItem& it) {
             auto p = it.global<std::int32_t>(buf);
             const auto i = static_cast<std::size_t>(it.global_id(0));
             const auto n = static_cast<std::size_t>(it.global_size(0));
             p.store(i, it.global_id(0));
             it.barrier();
             (void)p.load((i + 1) % n);
           }};
  EXPECT_NO_THROW(
      ctx->engine().run(k, {.global = NDRange(64), .local = NDRange(64)}));
}

TEST_F(ValidationTest, CrossGroupConflictRacesEvenWithBarriers) {
  Buffer buf = ctx->create_buffer("xgroup", 64 * sizeof(std::int32_t));
  // Barriers only order items of the same group; group 1 reading what
  // group 0 wrote is a race no barrier can fix.
  Kernel k{.name = "cross_group",
           .uses_barriers = true,
           .body = [&](WorkItem& it) {
             auto p = it.global<std::int32_t>(buf);
             const auto i = static_cast<std::size_t>(it.global_id(0));
             p.store(i, 1);
             it.barrier();
             const auto n = static_cast<std::size_t>(it.global_size(0));
             (void)p.load((i + 32) % n);  // other group's slot
           }};
  EXPECT_THROW(
      ctx->engine().run(k, {.global = NDRange(64), .local = NDRange(32)}),
      ValidationError);
}

TEST_F(ValidationTest, AtomicsAreExemptFromRaceDetection) {
  Buffer buf = ctx->create_buffer("counter", sizeof(std::int32_t));
  Kernel k{.name = "atomic_sum",
           .body = [&](WorkItem& it) {
             auto p = it.global<std::int32_t>(buf);
             (void)p.atomic_add(0, 1);
           }};
  EXPECT_NO_THROW(
      ctx->engine().run(k, {.global = NDRange(64), .local = NDRange(16)}));
  EXPECT_EQ(buf.backing_as<std::int32_t>()[0], 64);
}

// --- lifetime tracking ------------------------------------------------------

TEST_F(ValidationTest, KernelUseOfReleasedBufferIsUseAfterRelease) {
  Buffer buf = ctx->create_buffer("gone", 16 * sizeof(float));
  buf.release();
  Kernel k{.name = "use_released",
           .body = [&](WorkItem& it) { (void)it.global<float>(buf); }};
  try {
    ctx->engine().run(k, {.global = NDRange(1), .local = NDRange(1)});
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.violation().kind, ViolationKind::kUseAfterRelease);
    EXPECT_EQ(e.violation().kernel, "use_released");
    EXPECT_EQ(e.violation().object, "gone");
  }
}

TEST_F(ValidationTest, EnqueueOnReleasedBufferIsUseAfterRelease) {
  CommandQueue q(*ctx);
  Buffer buf = ctx->create_buffer("gone", 16);
  buf.release();
  std::vector<std::byte> host(16);
  try {
    q.enqueue_write(buf, host.data(), host.size());
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.violation().kind, ViolationKind::kUseAfterRelease);
    EXPECT_EQ(e.violation().object, "gone");
  }
}

TEST_F(ValidationTest, CheckLeaksReportsLiveObjectsAndClearsAfterRelease) {
  CommandQueue q(*ctx);  // queues are registered objects too
  Buffer buf = ctx->create_buffer("held", 16);
  EXPECT_THROW(ctx->check_leaks(), ValidationError);
  buf.release();
  try {
    ctx->check_leaks();
    FAIL() << "queue is still live";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.violation().kind, ViolationKind::kLeak);
    EXPECT_NE(std::string(e.what()).find("queue"), std::string::npos);
    EXPECT_EQ(std::string(e.what()).find("held"), std::string::npos);
  }
}

TEST_F(ValidationTest, SeededBufferLeakIsReportedAtTeardown) {
  validation::reset_teardown_stats();
  auto* leaked =
      new Buffer(ctx->create_buffer("leaky", 32));  // never released
  ctx.reset();                                      // context teardown
  EXPECT_EQ(validation::teardown_leaks(), 1u);
  const std::string report = validation::last_teardown_report();
  EXPECT_NE(report.find("buffer 'leaky'"), std::string::npos);
  delete leaked;  // silence the *real* leak; unregistration is safe late
  validation::reset_teardown_stats();
}

TEST_F(ValidationTest, EnqueueOnDeadQueueIsReported) {
  // A queue that outlives its context: enqueues must be refused before
  // they touch the dangling context.
  auto queue = std::make_unique<CommandQueue>(*ctx);
  validation::reset_teardown_stats();
  ctx.reset();
  try {
    queue->finish();
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.violation().kind, ViolationKind::kDeadQueue);
  }
  queue.reset();
  validation::reset_teardown_stats();
}

// --- checked vs unchecked equivalence ---------------------------------------

TEST_F(ValidationTest, CheckedAndUncheckedRunsAreBitIdentical) {
  // The same kernel run with validation fully on and fully off must write
  // identical bytes: the checkers observe, they never perturb.
  const auto run = [](ValidationSettings s) {
    Context c(amd_firepro_w8000());
    c.set_validation(s);
    Buffer in = c.create_buffer("in", 256 * sizeof(float));
    Buffer out = c.create_buffer("out", 256 * sizeof(float));
    auto src = in.backing_as<float>();
    for (std::size_t i = 0; i < src.size(); ++i) {
      src[i] = static_cast<float>(i) * 0.5f;
    }
    Kernel k{.name = "axpy",
             .uses_barriers = true,
             .body = [&](WorkItem& it) {
               auto a = it.global<const float>(in);
               auto b = it.global<float>(out);
               const auto i = static_cast<std::size_t>(it.global_id(0));
               b.store(i, 2.0f * a.load(i) + 1.0f);
               it.barrier();
               b.store(i, b.load(i) + a.load(i));
             }};
    c.engine().run(k, {.global = NDRange(256), .local = NDRange(64)});
    auto o = out.backing_as<float>();
    return std::vector<float>(o.begin(), o.end());
  };
  EXPECT_EQ(run(ValidationSettings::full()), run(ValidationSettings{}));
}

}  // namespace
