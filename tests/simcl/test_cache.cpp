// LineCacheSim: the coalescing/data-reuse model must count transactions
// exactly, since the vectorization results of Fig. 14 rest on it.
#include "simcl/cache_sim.hpp"

#include <gtest/gtest.h>

namespace {

using simcl::LineCacheSim;

TEST(LineCacheSim, FirstTouchMissesOncePerLine) {
  LineCacheSim cache(16 * 1024, 64);
  EXPECT_EQ(cache.access(0, 4), 1u);    // cold miss
  EXPECT_EQ(cache.access(4, 4), 0u);    // same line
  EXPECT_EQ(cache.access(60, 4), 0u);   // still within line 0
  EXPECT_EQ(cache.access(64, 4), 1u);   // next line
}

TEST(LineCacheSim, AccessSpanningTwoLinesCountsBoth) {
  LineCacheSim cache(16 * 1024, 64);
  EXPECT_EQ(cache.access(60, 8), 2u);  // straddles lines 0 and 1
  EXPECT_EQ(cache.access(0, 4), 0u);
  EXPECT_EQ(cache.access(64, 4), 0u);
}

TEST(LineCacheSim, SequentialStreamMissesOnceEvery64Bytes) {
  LineCacheSim cache(16 * 1024, 64);
  std::uint32_t misses = 0;
  for (std::uint64_t addr = 0; addr < 4096; addr += 4) {
    misses += cache.access(addr, 4);
  }
  EXPECT_EQ(misses, 4096u / 64u);
}

TEST(LineCacheSim, ConflictEvictsWhenWaysExhausted) {
  // 1 KiB, 64 B lines, 2-way => 8 sets. Addresses k*512 share set 0;
  // two of them fit, the third evicts the LRU.
  LineCacheSim cache(1024, 64, 2);
  EXPECT_EQ(cache.access(0, 4), 1u);
  EXPECT_EQ(cache.access(512, 4), 1u);
  EXPECT_EQ(cache.access(0, 4), 0u);     // both ways resident
  EXPECT_EQ(cache.access(1024, 4), 1u);  // evicts LRU (512)
  EXPECT_EQ(cache.access(0, 4), 0u);     // 0 was MRU, still resident
  EXPECT_EQ(cache.access(512, 4), 1u);   // was evicted
}

TEST(LineCacheSim, LruKeepsRecentlyTouchedLines) {
  LineCacheSim cache(1024, 64, 2);
  EXPECT_EQ(cache.access(0, 4), 1u);
  EXPECT_EQ(cache.access(512, 4), 1u);
  EXPECT_EQ(cache.access(512, 4), 0u);   // refresh 512 -> MRU
  EXPECT_EQ(cache.access(1024, 4), 1u);  // evicts 0 (now LRU)
  EXPECT_EQ(cache.access(512, 4), 0u);
  EXPECT_EQ(cache.access(0, 4), 1u);
}

TEST(LineCacheSim, RowStridedScansDoNotThrash) {
  // Image rows one cache-size apart: a direct-mapped model would miss on
  // every access; associativity must keep the active rows resident.
  LineCacheSim cache(16 * 1024, 64, 8);
  std::uint32_t misses = 0;
  constexpr std::uint64_t kRowStride = 16 * 1024;
  for (std::uint64_t x = 0; x < 256; x += 4) {
    for (std::uint64_t row = 0; row < 4; ++row) {
      misses += cache.access(row * kRowStride + x, 4);
    }
  }
  // 4 rows x 256 bytes = 16 distinct lines; everything else must hit.
  EXPECT_EQ(misses, 16u);
}

TEST(LineCacheSim, ResetInvalidatesEverything) {
  LineCacheSim cache(16 * 1024, 64);
  EXPECT_EQ(cache.access(128, 4), 1u);
  EXPECT_EQ(cache.access(128, 4), 0u);
  cache.reset();
  EXPECT_EQ(cache.access(128, 4), 1u);
}

TEST(LineCacheSim, ZeroSizeAccessIsFree) {
  LineCacheSim cache(16 * 1024, 64);
  EXPECT_EQ(cache.access(0, 0), 0u);
}

TEST(LineCacheSim, RejectsNonPowerOfTwoGeometry) {
  EXPECT_THROW(LineCacheSim(1000, 64), simcl::InvalidArgument);
  EXPECT_THROW(LineCacheSim(1024, 48), simcl::InvalidArgument);
  EXPECT_THROW(LineCacheSim(32, 64), simcl::InvalidArgument);
  EXPECT_THROW(LineCacheSim(1024, 64, 3), simcl::InvalidArgument);
  EXPECT_THROW(LineCacheSim(256, 64, 8), simcl::InvalidArgument);
}

TEST(LineCacheSim, GeometryAccessors) {
  LineCacheSim cache(16 * 1024, 64);
  EXPECT_EQ(cache.line_bytes(), 64u);
  EXPECT_EQ(cache.lines(), 256u);
  EXPECT_EQ(cache.ways(), 8u);
}

}  // namespace
