// CommandQueue semantics: transfers move the right bytes, rect transfers
// scatter correctly (the padding-on-transfer path), map/unmap aliases the
// buffer, and the event timeline is consistent.
#include "simcl/queue.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace {

using namespace simcl;

class QueueTest : public ::testing::Test {
 protected:
  Context ctx{amd_firepro_w8000()};
  CommandQueue queue{ctx};
};

TEST_F(QueueTest, WriteThenReadRoundTrips) {
  Buffer buf = ctx.create_buffer("b", 256);
  std::vector<std::uint8_t> src(256);
  std::iota(src.begin(), src.end(), 0);
  queue.enqueue_write(buf, src.data(), src.size());
  std::vector<std::uint8_t> dst(256, 0xEE);
  queue.enqueue_read(buf, dst.data(), dst.size());
  EXPECT_EQ(src, dst);
}

TEST_F(QueueTest, WriteWithOffsetLeavesRestUntouched) {
  Buffer buf = ctx.create_buffer("b", 16);
  const std::uint8_t payload[4] = {1, 2, 3, 4};
  queue.enqueue_write(buf, payload, 4, 8);
  auto bytes = buf.backing_as<std::uint8_t>();
  for (std::size_t i = 0; i < 16; ++i) {
    if (i >= 8 && i < 12) {
      EXPECT_EQ(bytes[i], payload[i - 8]);
    } else {
      EXPECT_EQ(bytes[i], 0);
    }
  }
}

TEST_F(QueueTest, OutOfRangeTransfersThrow) {
  Buffer buf = ctx.create_buffer("b", 16);
  std::uint8_t tmp[32] = {};
  EXPECT_THROW(queue.enqueue_write(buf, tmp, 32), InvalidArgument);
  EXPECT_THROW(queue.enqueue_write(buf, tmp, 8, 12), InvalidArgument);
  EXPECT_THROW(queue.enqueue_read(buf, tmp, 17), InvalidArgument);
  EXPECT_THROW(queue.enqueue_write(buf, nullptr, 4), InvalidArgument);
}

TEST_F(QueueTest, WriteRectScattersRowsWithPitches) {
  // Host: 4x4 image with row pitch 4; device: 6x6 padded layout (pitch 6),
  // interior origin (1,1) — exactly the paper's padding-on-transfer.
  Buffer buf = ctx.create_buffer("padded", 36);
  std::vector<std::uint8_t> host(16);
  std::iota(host.begin(), host.end(), 1);
  RectRegion r;
  r.row_bytes = 4;
  r.rows = 4;
  r.buffer_offset = 6 + 1;  // row 1, col 1
  r.buffer_row_pitch = 6;
  r.host_offset = 0;
  r.host_row_pitch = 4;
  queue.enqueue_write_rect(buf, host.data(), r);
  auto b = buf.backing_as<std::uint8_t>();
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(b[static_cast<std::size_t>((y + 1) * 6 + (x + 1))],
                host[static_cast<std::size_t>(y * 4 + x)]);
    }
  }
  // Frame untouched (still zero).
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[5], 0);
  EXPECT_EQ(b[35], 0);
}

TEST_F(QueueTest, WriteRectValidatesGeometry) {
  Buffer buf = ctx.create_buffer("b", 36);
  std::uint8_t host[16] = {};
  RectRegion bad;
  bad.row_bytes = 8;
  bad.rows = 2;
  bad.buffer_row_pitch = 4;  // pitch < row
  bad.host_row_pitch = 8;
  EXPECT_THROW(queue.enqueue_write_rect(buf, host, bad), InvalidArgument);

  RectRegion oob;
  oob.row_bytes = 6;
  oob.rows = 7;  // 7 rows * pitch 6 overruns 36 bytes
  oob.buffer_row_pitch = 6;
  oob.host_row_pitch = 6;
  EXPECT_THROW(queue.enqueue_write_rect(buf, host, oob), InvalidArgument);
}

TEST_F(QueueTest, MapAliasesBufferAndUnmapsOnScopeExit) {
  Buffer buf = ctx.create_buffer("b", 8);
  {
    Mapping m = queue.map(buf, MapMode::kWrite, 0, 8);
    auto span = m.as<std::uint8_t>();
    for (std::size_t i = 0; i < span.size(); ++i) {
      span[i] = static_cast<std::uint8_t>(i * 3);
    }
  }  // destructor unmaps
  auto bytes = buf.backing_as<std::uint8_t>();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(bytes[i], static_cast<std::uint8_t>(i * 3));
  }
  ASSERT_EQ(queue.events().size(), 2u);
  EXPECT_EQ(queue.events()[0].kind, CommandKind::kMap);
  EXPECT_EQ(queue.events()[1].kind, CommandKind::kUnmap);
}

TEST_F(QueueTest, ReadMapChargesOnMapWriteMapChargesOnUnmap) {
  Buffer buf = ctx.create_buffer("b", 1 << 20);
  {
    Mapping m = queue.map(buf, MapMode::kRead, 0, 1 << 20);
  }
  const auto& ev = queue.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_GT(ev[0].duration_us(), ev[1].duration_us());

  queue.reset();
  {
    Mapping m = queue.map(buf, MapMode::kWrite, 0, 1 << 20);
  }
  const auto& ev2 = queue.events();
  ASSERT_EQ(ev2.size(), 2u);
  EXPECT_LT(ev2[0].duration_us(), ev2[1].duration_us());
}

TEST_F(QueueTest, TimelineIsMonotonicAndEventsAbut) {
  Buffer buf = ctx.create_buffer("b", 4096);
  std::vector<std::uint8_t> tmp(4096, 1);
  queue.enqueue_write(buf, tmp.data(), tmp.size());
  Kernel k{.name = "touch",
           .body = [&](WorkItem& it) {
             auto p = it.global<std::uint8_t>(buf);
             p.store(static_cast<std::size_t>(it.global_id(0)), 2);
           }};
  queue.enqueue_kernel(k, {.global = NDRange(4096), .local = NDRange(64)});
  queue.enqueue_read(buf, tmp.data(), tmp.size());
  queue.finish();
  const auto& ev = queue.events();
  ASSERT_EQ(ev.size(), 4u);
  double prev_end = 0.0;
  for (const auto& e : ev) {
    EXPECT_DOUBLE_EQ(e.start_us, prev_end);
    EXPECT_GE(e.end_us, e.start_us);
    prev_end = e.end_us;
  }
  EXPECT_DOUBLE_EQ(queue.timeline_us(), prev_end);
}

TEST_F(QueueTest, KernelEventCarriesStatsAndPhase) {
  Buffer buf = ctx.create_buffer("b", 64 * 4);
  queue.set_phase("sobel");
  Kernel k{.name = "k",
           .body = [&](WorkItem& it) {
             auto p = it.global<float>(buf);
             p.store(static_cast<std::size_t>(it.global_id(0)), 1.0f);
             it.alu(3);
           }};
  Event ev = queue.enqueue_kernel(
      k, {.global = NDRange(64), .local = NDRange(64)});
  EXPECT_EQ(ev.phase, "sobel");
  EXPECT_EQ(ev.stats.work_items, 64u);
  EXPECT_EQ(ev.stats.alu_ops, 192u);
  EXPECT_EQ(ev.name, "k");
  EXPECT_EQ(ev.kind, CommandKind::kKernel);
}

TEST_F(QueueTest, HostWorkAndMemcpyChargeTime) {
  Event w = queue.host_work("border", {.flops = 1e6, .bytes = 1e6});
  EXPECT_GT(w.duration_us(), 0.0);
  Event m = queue.host_memcpy("pad", 1 << 20);
  EXPECT_GT(m.duration_us(), 0.0);
  EXPECT_EQ(m.bytes, std::size_t{1} << 20);
}

TEST_F(QueueTest, ResetClearsTimelineAndEvents) {
  queue.host_work("x", {.flops = 1e6});
  EXPECT_GT(queue.timeline_us(), 0.0);
  queue.reset();
  EXPECT_DOUBLE_EQ(queue.timeline_us(), 0.0);
  EXPECT_TRUE(queue.events().empty());
}

TEST_F(QueueTest, BufferDeviceAddressesAreDisjoint) {
  Buffer a = ctx.create_buffer("a", 100);
  Buffer b = ctx.create_buffer("b", 100);
  Buffer c = ctx.create_buffer("c", 5000);
  EXPECT_GE(b.device_addr(), a.device_addr() + 100);
  EXPECT_GE(c.device_addr(), b.device_addr() + 100);
  EXPECT_EQ(a.device_addr() % 64, 0u);
  EXPECT_EQ(b.device_addr() % 64, 0u);
}

TEST_F(QueueTest, ZeroSizedBufferRejected) {
  EXPECT_THROW(ctx.create_buffer("z", 0), InvalidArgument);
}

}  // namespace
