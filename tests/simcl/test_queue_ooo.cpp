// Out-of-order queue semantics: lane scheduling, explicit event
// dependencies (diamond graphs), barrier behaviour of clFinish, and the
// transfer/compute overlap that motivates the feature.
#include <gtest/gtest.h>

#include <vector>

#include "simcl/queue.hpp"

namespace {

using namespace simcl;

class OooQueueTest : public ::testing::Test {
 protected:
  Context ctx{amd_firepro_w8000()};
  CommandQueue q{ctx, QueueMode::kOutOfOrder};

  Kernel busy_kernel(Buffer& buf, std::uint64_t alu_per_item) {
    return Kernel{.name = "busy",
                  .body = [&buf, alu_per_item](WorkItem& it) {
                    auto p = it.global<float>(buf);
                    const auto i =
                        static_cast<std::size_t>(it.global_id(0));
                    p.store(i, p.load(i) + 1.0f);
                    it.alu(alu_per_item);
                  }};
  }
};

TEST_F(OooQueueTest, IndependentTransfersAndKernelsOverlap) {
  Buffer a = ctx.create_buffer("a", 1 << 20);
  Buffer b = ctx.create_buffer("b", 1 << 22);
  std::vector<std::byte> host(1 << 22);
  // A kernel with no dependencies and an unrelated upload: they run on
  // different lanes and must overlap in simulated time.
  Kernel k = busy_kernel(a, 2000);
  const Event kev =
      q.enqueue_kernel(k, {.global = NDRange(1 << 18),
                           .local = NDRange(256)});
  const Event wev = q.enqueue_write(b, host.data(), host.size());
  EXPECT_DOUBLE_EQ(kev.start_us, 0.0);
  EXPECT_DOUBLE_EQ(wev.start_us, 0.0);  // overlapped, not serialized
  EXPECT_GT(kev.end_us, 0.0);
  EXPECT_GT(wev.end_us, 0.0);
}

TEST_F(OooQueueTest, SameLaneCommandsSerialize) {
  Buffer b = ctx.create_buffer("b", 1 << 20);
  std::vector<std::byte> host(1 << 20);
  const Event w1 = q.enqueue_write(b, host.data(), host.size());
  const Event w2 = q.enqueue_write(b, host.data(), host.size());
  EXPECT_DOUBLE_EQ(w2.start_us, w1.end_us);  // one H2D DMA engine
}

TEST_F(OooQueueTest, WaitListsEnforceDiamondDependencies) {
  Buffer buf = ctx.create_buffer("buf", 4096);
  std::vector<std::byte> host(4096);
  Kernel k = busy_kernel(buf, 100);
  const LaunchConfig cfg{.global = NDRange(1024), .local = NDRange(256)};

  const Event top = q.enqueue_write(buf, host.data(), host.size());
  const Event left = q.enqueue_kernel(k, cfg, {top.id});
  const Event right = q.enqueue_read(buf, host.data(), 64, 0, {top.id});
  const Event bottom = q.enqueue_kernel(k, cfg, {left.id, right.id});

  EXPECT_GE(left.start_us, top.end_us);
  EXPECT_GE(right.start_us, top.end_us);
  EXPECT_GE(bottom.start_us, left.end_us);
  EXPECT_GE(bottom.start_us, right.end_us);
  // left (compute) and right (D2H) overlap.
  EXPECT_LT(right.start_us, left.end_us);
}

TEST_F(OooQueueTest, UnknownWaitIdRejected) {
  Buffer buf = ctx.create_buffer("buf", 64);
  std::byte host[64];
  EXPECT_THROW(q.enqueue_write(buf, host, 64, 0, {42}), InvalidArgument);
}

TEST_F(OooQueueTest, FinishIsAFullBarrier) {
  Buffer a = ctx.create_buffer("a", 1 << 20);
  std::vector<std::byte> host(1 << 20);
  Kernel k = busy_kernel(a, 5000);
  q.enqueue_kernel(k, {.global = NDRange(1 << 16), .local = NDRange(256)});
  q.enqueue_write(a, host.data(), host.size());
  const double t = q.finish();
  // Everything after finish starts at/after the barrier.
  const Event late = q.enqueue_write(a, host.data(), 64);
  EXPECT_GE(late.start_us, t - ctx.device().clfinish_us);
  EXPECT_GE(late.start_us, q.events()[0].end_us);
  EXPECT_GE(late.start_us, q.events()[1].end_us);
}

TEST_F(OooQueueTest, TimelineIsMakespanNotSum) {
  Buffer a = ctx.create_buffer("a", 1 << 22);
  std::vector<std::byte> host(1 << 22);
  Kernel k = busy_kernel(a, 3000);
  const Event kev = q.enqueue_kernel(
      k, {.global = NDRange(1 << 18), .local = NDRange(256)});
  const Event wev = q.enqueue_write(a, host.data(), host.size());
  EXPECT_DOUBLE_EQ(q.timeline_us(),
                   std::max(kev.end_us, wev.end_us));
}

TEST_F(OooQueueTest, InOrderQueueIgnoresWaitListsForScheduling) {
  // On an in-order queue, wait lists are redundant (everything serializes
  // anyway) — they must be accepted and change nothing.
  CommandQueue in_order(ctx);
  Buffer buf = ctx.create_buffer("buf", 4096);
  std::byte host[64];
  const Event w = in_order.enqueue_write(buf, host, 64);
  const Event r = in_order.enqueue_read(buf, host, 64, 0, {w.id});
  EXPECT_DOUBLE_EQ(r.start_us, w.end_us);
  EXPECT_EQ(in_order.mode(), QueueMode::kInOrder);
  EXPECT_EQ(q.mode(), QueueMode::kOutOfOrder);
}

TEST_F(OooQueueTest, DoubleBufferedFramesPipelineTransfersBehindCompute) {
  // The classic pattern: two buffer sets; frame k+1's upload overlaps
  // frame k's kernel. Total time approaches max(lane totals), not the
  // sum of per-frame times.
  constexpr int kFrames = 6;
  const std::size_t bytes = 1 << 20;
  Buffer bufs[2] = {ctx.create_buffer("f0", bytes),
                    ctx.create_buffer("f1", bytes)};
  std::vector<std::byte> host(bytes);
  Kernel kernels[2] = {busy_kernel(bufs[0], 1200),
                       busy_kernel(bufs[1], 1200)};
  const LaunchConfig cfg{.global = NDRange(1 << 17),
                         .local = NDRange(256)};

  EventId last_kernel[2] = {0, 0};
  bool has_kernel[2] = {false, false};
  double serial_sum = 0.0;
  for (int f = 0; f < kFrames; ++f) {
    const int slot = f % 2;
    WaitList upload_waits;
    if (has_kernel[slot]) {
      upload_waits.push_back(last_kernel[slot]);  // WAR on the buffer
    }
    const Event up =
        q.enqueue_write(bufs[slot], host.data(), bytes, 0, upload_waits);
    const Event kv = q.enqueue_kernel(kernels[slot], cfg, {up.id});
    last_kernel[slot] = kv.id;
    has_kernel[slot] = true;
    serial_sum += up.duration_us() + kv.duration_us();
  }
  // Pipelined makespan clearly beats the serialized sum.
  EXPECT_LT(q.timeline_us(), 0.8 * serial_sum);
}

}  // namespace
