// Image2D objects + samplers: formats, transfers, sampled reads with
// both address modes, writes, and accounting.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simcl/queue.hpp"

namespace {

using namespace simcl;

class Image2DTest : public ::testing::Test {
 protected:
  Context ctx{amd_firepro_w8000()};
  CommandQueue q{ctx};
  Engine& engine{ctx.engine()};
};

TEST_F(Image2DTest, CreationAndFormats) {
  Image2D u8 = ctx.create_image2d("u8", ChannelFormat::kR_U8, 8, 4);
  EXPECT_EQ(u8.width(), 8);
  EXPECT_EQ(u8.height(), 4);
  EXPECT_EQ(u8.pixel_bytes(), 1u);
  EXPECT_EQ(u8.byte_size(), 32u);
  Image2D f32 = ctx.create_image2d("f32", ChannelFormat::kR_F32, 8, 4);
  EXPECT_EQ(f32.byte_size(), 128u);
  EXPECT_NE(u8.device_addr(), f32.device_addr());
  EXPECT_THROW(ctx.create_image2d("bad", ChannelFormat::kR_U8, 0, 4),
               InvalidArgument);
}

TEST_F(Image2DTest, WriteReadRoundTrip) {
  Image2D img = ctx.create_image2d("img", ChannelFormat::kR_I32, 4, 4);
  std::vector<std::int32_t> src(16);
  std::iota(src.begin(), src.end(), 100);
  q.enqueue_write_image(img, src.data());
  std::vector<std::int32_t> dst(16, 0);
  q.enqueue_read_image(img, dst.data());
  EXPECT_EQ(src, dst);
  EXPECT_THROW(q.enqueue_write_image(img, nullptr), InvalidArgument);
  EXPECT_THROW(q.enqueue_read_image(img, nullptr), InvalidArgument);
}

TEST_F(Image2DTest, SampledReadsInsideImage) {
  Image2D img = ctx.create_image2d("img", ChannelFormat::kR_U8, 4, 3);
  std::vector<std::uint8_t> src{1, 2,  3,  4,  //
                                5, 6,  7,  8,  //
                                9, 10, 11, 12};
  q.enqueue_write_image(img, src.data());
  std::vector<std::int32_t> got;
  Kernel k{.name = "probe",
           .body = [&](WorkItem&
                           it) {
             auto im = it.image<const std::uint8_t>(img);
             EXPECT_EQ(im.width(), 4);
             EXPECT_EQ(im.height(), 3);
             got.push_back(im.read(0, 0));
             got.push_back(im.read(3, 0));
             got.push_back(im.read(2, 2));
           }};
  engine.run(k, {.global = NDRange(1), .local = NDRange(1)});
  EXPECT_EQ(got, (std::vector<std::int32_t>{1, 4, 11}));
}

TEST_F(Image2DTest, ClampToEdgeReplicatesBorder) {
  Image2D img = ctx.create_image2d("img", ChannelFormat::kR_U8, 3, 3);
  const std::uint8_t src[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  q.enqueue_write_image(img, src);
  std::vector<std::int32_t> got;
  Kernel k{.name = "probe",
           .body = [&](WorkItem& it) {
             auto im = it.image<const std::uint8_t>(img);
             const Sampler edge{AddressMode::kClampToEdge};
             got.push_back(im.read(-1, -1, edge));  // -> (0,0)
             got.push_back(im.read(5, 0, edge));    // -> (2,0)
             got.push_back(im.read(1, 99, edge));   // -> (1,2)
             const Sampler zero{AddressMode::kClampToZero};
             got.push_back(im.read(-1, 0, zero));
             got.push_back(im.read(0, 3, zero));
           }};
  engine.run(k, {.global = NDRange(1), .local = NDRange(1)});
  EXPECT_EQ(got, (std::vector<std::int32_t>{1, 3, 8, 0, 0}));
}

TEST_F(Image2DTest, WritesLandAndOutOfRangeWriteFaults) {
  Image2D img = ctx.create_image2d("img", ChannelFormat::kR_F32, 4, 4);
  Kernel k{.name = "write",
           .body = [&](WorkItem& it) {
             auto im = it.image<float>(img);
             im.write(it.global_id(0), it.global_id(1),
                      static_cast<float>(it.global_id(0) * 10 +
                                         it.global_id(1)));
           }};
  engine.run(k, {.global = NDRange(4, 4), .local = NDRange(4, 4)});
  std::vector<float> out(16);
  q.enqueue_read_image(img, out.data());
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[4 + 2], 21.0f);  // (x=2, y=1)

  Kernel bad{.name = "bad",
             .body = [&](WorkItem& it) {
               auto im = it.image<float>(img);
               im.write(99, 0, 1.0f);
               (void)it;
             }};
  // KernelFault unchecked; attributed ValidationError when the bounds
  // checker is on — both are simcl::Error.
  EXPECT_THROW(engine.run(bad, {.global = NDRange(1), .local = NDRange(1)}),
               Error);
}

TEST_F(Image2DTest, TypeFormatMismatchFaults) {
  Image2D img = ctx.create_image2d("img", ChannelFormat::kR_U8, 4, 4);
  Kernel k{.name = "mismatch",
           .body = [&](WorkItem& it) {
             (void)it.image<const float>(img);  // 4 bytes vs 1-byte texels
           }};
  EXPECT_THROW(engine.run(k, {.global = NDRange(1), .local = NDRange(1)}),
               KernelFault);
}

TEST_F(Image2DTest, ReadsAreCountedAsLoadsAndCacheFiltered) {
  Image2D img = ctx.create_image2d("img", ChannelFormat::kR_U8, 64, 64);
  std::vector<std::uint8_t> src(64 * 64, 1);
  q.enqueue_write_image(img, src.data());
  Kernel k{.name = "sum3x3",
           .body = [&](WorkItem& it) {
             auto im = it.image<const std::uint8_t>(img);
             std::int32_t acc = 0;
             for (int dy = -1; dy <= 1; ++dy) {
               for (int dx = -1; dx <= 1; ++dx) {
                 acc += im.read(it.global_id(0) + dx,
                                it.global_id(1) + dy);
               }
             }
             it.alu(static_cast<std::uint64_t>(acc > 0 ? 9 : 9));
           }};
  const KernelStats s = engine.run(
      k, {.global = NDRange(64, 64), .local = NDRange(16, 16)});
  EXPECT_EQ(s.global_loads, 64u * 64u * 9u);
  // Texture-cache locality: far fewer DRAM lines than loads.
  EXPECT_LT(s.l1_miss_lines, s.global_loads / 8);
}

}  // namespace
