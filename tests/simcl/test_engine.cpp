// Engine semantics: NDRange decomposition, accessor accounting, local
// memory sharing, barrier correctness (the fiber scheduler), atomics and
// failure injection.
#include "simcl/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "simcl/queue.hpp"

namespace {

using namespace simcl;

DeviceSpec test_spec() {
  DeviceSpec d = amd_firepro_w8000();
  return d;
}

class EngineTest : public ::testing::Test {
 protected:
  Context ctx{test_spec()};
  Engine& engine{ctx.engine()};
};

TEST_F(EngineTest, GlobalIdsCoverEveryItemExactlyOnce1D) {
  Buffer buf = ctx.create_buffer("ids", 1024 * sizeof(std::int32_t));
  Kernel k{.name = "ids",
           .body = [&](WorkItem& it) {
             auto out = it.global<std::int32_t>(buf);
             const auto i = static_cast<std::size_t>(it.global_id(0));
             out.store(i, out.load(i) + 1);
           }};
  engine.run(k, {.global = NDRange(1024), .local = NDRange(64)});
  for (std::int32_t v : buf.backing_as<std::int32_t>()) {
    EXPECT_EQ(v, 1);
  }
}

TEST_F(EngineTest, GlobalIdsCoverEveryItemExactlyOnce2D) {
  constexpr int kW = 64, kH = 48;
  Buffer buf = ctx.create_buffer("ids2d", kW * kH * sizeof(std::int32_t));
  Kernel k{.name = "ids2d",
           .body = [&](WorkItem& it) {
             auto out = it.global<std::int32_t>(buf);
             const int x = it.global_id(0);
             const int y = it.global_id(1);
             out.store(static_cast<std::size_t>(y * kW + x),
                       y * kW + x);
           }};
  engine.run(k, {.global = NDRange(kW, kH), .local = NDRange(16, 8)});
  auto vals = buf.backing_as<std::int32_t>();
  for (int i = 0; i < kW * kH; ++i) {
    EXPECT_EQ(vals[static_cast<std::size_t>(i)], i);
  }
}

TEST_F(EngineTest, GeometryQueriesAreConsistent) {
  bool checked = false;
  Kernel k{.name = "geom",
           .body = [&](WorkItem& it) {
             ASSERT_EQ(it.global_size(0), 128);
             ASSERT_EQ(it.global_size(1), 32);
             ASSERT_EQ(it.local_size(0), 16);
             ASSERT_EQ(it.local_size(1), 4);
             ASSERT_EQ(it.num_groups(0), 8);
             ASSERT_EQ(it.num_groups(1), 8);
             ASSERT_EQ(it.global_id(0),
                       it.group_id(0) * it.local_size(0) + it.local_id(0));
             ASSERT_EQ(it.global_id(1),
                       it.group_id(1) * it.local_size(1) + it.local_id(1));
             ASSERT_EQ(it.flat_local_id(),
                       it.local_id(1) * it.local_size(0) + it.local_id(0));
             checked = true;
           }};
  engine.run(k, {.global = NDRange(128, 32), .local = NDRange(16, 4)});
  EXPECT_TRUE(checked);
}

TEST_F(EngineTest, StatsCountItemsGroupsAluAndAccesses) {
  Buffer buf = ctx.create_buffer("data", 256 * sizeof(float));
  Kernel k{.name = "stats",
           .body = [&](WorkItem& it) {
             auto p = it.global<float>(buf);
             const auto i = static_cast<std::size_t>(it.global_id(0));
             p.store(i, p.load(i) * 2.0f);
             it.alu(7);
           }};
  KernelStats s =
      engine.run(k, {.global = NDRange(256), .local = NDRange(32)});
  EXPECT_EQ(s.work_items, 256u);
  EXPECT_EQ(s.work_groups, 8u);
  EXPECT_EQ(s.alu_ops, 256u * 7u);
  EXPECT_EQ(s.global_loads, 256u);
  EXPECT_EQ(s.global_stores, 256u);
  EXPECT_EQ(s.global_load_bytes, 256u * 4u);
  EXPECT_EQ(s.global_store_bytes, 256u * 4u);
  // 32 items/group * 4 B each = 2 lines per group, store hits the loaded
  // line -> 2 misses per group, 8 groups.
  EXPECT_EQ(s.l1_miss_lines, 16u);
}

TEST_F(EngineTest, VectorLoadIsOneIssueSlot) {
  Buffer buf = ctx.create_buffer("vec", 256 * sizeof(float));
  Kernel k{.name = "vec",
           .body = [&](WorkItem& it) {
             auto p = it.global<float>(buf);
             const auto i = static_cast<std::size_t>(it.global_id(0)) * 4;
             float4 v = p.vload4(i);
             p.vstore4(v * 2.0f, i);
           }};
  KernelStats s = engine.run(k, {.global = NDRange(64), .local = NDRange(64)});
  EXPECT_EQ(s.global_loads, 64u);
  EXPECT_EQ(s.global_stores, 64u);
  EXPECT_EQ(s.global_load_bytes, 64u * 16u);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(buf.backing_as<float>()[i], 0.0f);
  }
}

TEST_F(EngineTest, LocalArrayIsSharedWithinGroup) {
  // Each group writes its local ids into LDS, barriers, then item 0 sums
  // them and writes the group total: n*(n-1)/2.
  constexpr std::size_t kGroups = 4, kLocal = 64;
  Buffer out = ctx.create_buffer("out", kGroups * sizeof(std::int32_t));
  Kernel k{.name = "lds_sum",
           .uses_barriers = true,
           .body = [&](WorkItem& it) {
             auto lds = it.local_array<std::int32_t>(kLocal);
             const auto lid = static_cast<std::size_t>(it.local_id(0));
             lds.store(lid, it.local_id(0));
             it.barrier();
             if (lid == 0) {
               std::int32_t acc = 0;
               for (std::size_t j = 0; j < kLocal; ++j) {
                 acc += lds.load(j);
               }
               auto o = it.global<std::int32_t>(out);
               o.store(static_cast<std::size_t>(it.group_id(0)), acc);
             }
           }};
  KernelStats s = engine.run(
      k, {.global = NDRange(kGroups * kLocal), .local = NDRange(kLocal)});
  for (std::int32_t v : out.backing_as<std::int32_t>()) {
    EXPECT_EQ(v, 64 * 63 / 2);
  }
  EXPECT_EQ(s.barrier_events, kGroups);
}

TEST_F(EngineTest, BarrierSeparatesPhasesCorrectly) {
  // Classic check: every item writes slot lid, barriers, then reads slot
  // (lid+1) % n. Without real barrier semantics the read sees stale data.
  constexpr std::size_t kLocal = 128;
  Buffer out = ctx.create_buffer("out", kLocal * sizeof(std::int32_t));
  Kernel k{.name = "neighbor",
           .uses_barriers = true,
           .body = [&](WorkItem& it) {
             auto lds = it.local_array<std::int32_t>(kLocal);
             const auto lid = static_cast<std::size_t>(it.local_id(0));
             lds.store(lid, static_cast<std::int32_t>(lid) * 10);
             it.barrier();
             const std::size_t next = (lid + 1) % kLocal;
             auto o = it.global<std::int32_t>(out);
             o.store(lid, lds.load(next));
           }};
  engine.run(k, {.global = NDRange(kLocal), .local = NDRange(kLocal)});
  auto vals = out.backing_as<std::int32_t>();
  for (std::size_t i = 0; i < kLocal; ++i) {
    EXPECT_EQ(vals[i], static_cast<std::int32_t>((i + 1) % kLocal) * 10);
  }
}

TEST_F(EngineTest, TreeReductionWithBarriersMatchesSerialSum) {
  constexpr std::size_t kN = 4096, kLocal = 128;
  Buffer in = ctx.create_buffer("in", kN * sizeof(std::int32_t));
  Buffer out = ctx.create_buffer("out", (kN / kLocal) * sizeof(std::int32_t));
  {
    auto vals = in.backing_as<std::int32_t>();
    std::iota(vals.begin(), vals.end(), 1);
  }
  Kernel k{.name = "tree_reduce",
           .uses_barriers = true,
           .body = [&](WorkItem& it) {
             auto src = it.global<const std::int32_t>(in);
             auto dst = it.global<std::int32_t>(out);
             auto lds = it.local_array<std::int32_t>(kLocal);
             const auto lid = static_cast<std::size_t>(it.local_id(0));
             lds.store(lid, src.load(
                 static_cast<std::size_t>(it.global_id(0))));
             it.barrier();
             for (std::size_t stride = kLocal / 2; stride > 0; stride /= 2) {
               if (lid < stride) {
                 lds.add_from(lid, lid + stride);
               }
               it.barrier();
             }
             if (lid == 0) {
               dst.store(static_cast<std::size_t>(it.group_id(0)),
                         lds.load(0));
             }
           }};
  KernelStats s =
      engine.run(k, {.global = NDRange(kN), .local = NDRange(kLocal)});
  std::int64_t total = 0;
  for (std::int32_t v : out.backing_as<std::int32_t>()) {
    total += v;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(kN) * (kN + 1) / 2);
  // log2(128) = 7 reduction barriers + 1 after load, per group.
  EXPECT_EQ(s.barrier_events, (kN / kLocal) * 8u);
}

static std::int32_t first_i32(const Buffer& b) {
  return b.backing_as<std::int32_t>()[0];
}

TEST_F(EngineTest, AtomicAddAccumulatesAcrossGroups) {
  Buffer sum = ctx.create_buffer("sum", sizeof(std::int32_t));
  Kernel k{.name = "atomic",
           .body = [&](WorkItem& it) {
             auto p = it.global<std::int32_t>(sum);
             p.atomic_add(0, it.global_id(0));
           }};
  KernelStats s =
      engine.run(k, {.global = NDRange(512), .local = NDRange(64)});
  EXPECT_EQ(first_i32(sum), 511 * 512 / 2);
  EXPECT_EQ(s.atomic_ops, 512u);
}

TEST_F(EngineTest, MultiThreadedGroupsProduceIdenticalStats) {
  DeviceSpec spec = test_spec();
  Context ctx2(spec, intel_core_i5_3470(), 4);
  Buffer a1 = ctx.create_buffer("a", 4096 * sizeof(float));
  Buffer a2 = ctx2.create_buffer("a", 4096 * sizeof(float));
  auto make_kernel = [](Buffer& b) {
    return Kernel{.name = "scale",
                  .body = [&b](WorkItem& it) {
                    auto p = it.global<float>(b);
                    const auto i =
                        static_cast<std::size_t>(it.global_id(0));
                    p.store(i, static_cast<float>(i) * 0.5f);
                    it.alu(2);
                  }};
  };
  Kernel k1 = make_kernel(a1);
  Kernel k2 = make_kernel(a2);
  const LaunchConfig cfg{.global = NDRange(4096), .local = NDRange(64)};
  KernelStats s1 = ctx.engine().run(k1, cfg);
  KernelStats s2 = ctx2.engine().run(k2, cfg);
  EXPECT_EQ(s1.alu_ops, s2.alu_ops);
  EXPECT_EQ(s1.global_stores, s2.global_stores);
  EXPECT_EQ(s1.l1_miss_lines, s2.l1_miss_lines);
  EXPECT_EQ(std::vector<float>(a1.backing_as<float>().begin(),
                               a1.backing_as<float>().end()),
            std::vector<float>(a2.backing_as<float>().begin(),
                               a2.backing_as<float>().end()));
}

// --- failure injection ------------------------------------------------------

TEST_F(EngineTest, BarrierWithoutDeclarationThrows) {
  Kernel k{.name = "bad_barrier",
           .uses_barriers = false,
           .body = [](WorkItem& it) { it.barrier(); }};
  EXPECT_THROW(
      engine.run(k, {.global = NDRange(64), .local = NDRange(64)}),
      KernelFault);
}

TEST_F(EngineTest, OutOfBoundsGlobalAccessThrows) {
  Buffer buf = ctx.create_buffer("small", 16 * sizeof(float));
  Kernel k{.name = "oob",
           .body = [&](WorkItem& it) {
             auto p = it.global<float>(buf);
             p.store(999, 1.0f);
           }};
  // KernelFault unchecked; attributed ValidationError when the bounds
  // checker is on — both are simcl::Error.
  EXPECT_THROW(
      engine.run(k, {.global = NDRange(1), .local = NDRange(1)}),
      Error);
}

TEST_F(EngineTest, OutOfBoundsAccessInsideFiberKernelThrows) {
  Buffer buf = ctx.create_buffer("small", 16 * sizeof(float));
  Kernel k{.name = "oob_fiber",
           .uses_barriers = true,
           .body = [&](WorkItem& it) {
             it.barrier();
             auto p = it.global<float>(buf);
             p.store(999, 1.0f);
           }};
  EXPECT_THROW(
      engine.run(k, {.global = NDRange(64), .local = NDRange(64)}),
      Error);
}

TEST_F(EngineTest, LdsOverflowThrows) {
  Kernel k{.name = "lds_overflow",
           .body = [&](WorkItem& it) {
             (void)it.local_array<float>(1 << 20);
           }};
  EXPECT_THROW(
      engine.run(k, {.global = NDRange(1), .local = NDRange(1)}),
      KernelFault);
}

TEST_F(EngineTest, InvalidLaunchConfigsRejected) {
  Kernel k{.name = "noop", .body = [](WorkItem&) {}};
  EXPECT_THROW(
      engine.run(k, {.global = NDRange(100), .local = NDRange(64)}),
      InvalidLaunch);
  EXPECT_THROW(
      engine.run(k, {.global = NDRange(1024), .local = NDRange(512)}),
      InvalidLaunch);
  EXPECT_THROW(engine.run(k, {.global = NDRange(std::size_t{0}),
                              .local = NDRange(1)}),
               InvalidLaunch);
}

TEST_F(EngineTest, KernelWithoutBodyRejected) {
  Kernel k{.name = "empty"};
  EXPECT_THROW(
      engine.run(k, {.global = NDRange(1), .local = NDRange(1)}),
      InvalidArgument);
}

}  // namespace
