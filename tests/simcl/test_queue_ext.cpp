// Extended queue API (read-rect, copy, fill) and the profile helpers.
#include <gtest/gtest.h>

#include <numeric>

#include "simcl/profile.hpp"
#include "simcl/queue.hpp"

namespace {

using namespace simcl;

class QueueExtTest : public ::testing::Test {
 protected:
  Context ctx{amd_firepro_w8000()};
  CommandQueue queue{ctx};
};

TEST_F(QueueExtTest, ReadRectGathersStridedRegion) {
  // Device holds a 6x6 byte image; read the interior 4x4 into a tightly
  // packed host array.
  Buffer buf = ctx.create_buffer("b", 36);
  std::vector<std::uint8_t> all(36);
  std::iota(all.begin(), all.end(), 0);
  queue.enqueue_write(buf, all.data(), all.size());

  std::vector<std::uint8_t> host(16, 0xFF);
  RectRegion r;
  r.row_bytes = 4;
  r.rows = 4;
  r.buffer_offset = 6 + 1;
  r.buffer_row_pitch = 6;
  r.host_row_pitch = 4;
  queue.enqueue_read_rect(buf, host.data(), r);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(host[static_cast<std::size_t>(y * 4 + x)],
                (y + 1) * 6 + (x + 1));
    }
  }
}

TEST_F(QueueExtTest, ReadRectValidatesGeometry) {
  Buffer buf = ctx.create_buffer("b", 36);
  std::uint8_t host[64];
  RectRegion bad;
  bad.row_bytes = 8;
  bad.rows = 8;
  bad.buffer_row_pitch = 8;
  bad.host_row_pitch = 8;
  EXPECT_THROW(queue.enqueue_read_rect(buf, host, bad), InvalidArgument);
  EXPECT_THROW(queue.enqueue_read_rect(buf, nullptr, bad), InvalidArgument);
}

TEST_F(QueueExtTest, CopyMovesBytesOnDevice) {
  Buffer a = ctx.create_buffer("a", 64);
  Buffer b = ctx.create_buffer("b", 64);
  std::vector<std::uint8_t> payload(64);
  std::iota(payload.begin(), payload.end(), 1);
  queue.enqueue_write(a, payload.data(), payload.size());
  Event ev = queue.enqueue_copy(a, b, 32, 8, 16);
  EXPECT_EQ(ev.kind, CommandKind::kCopy);
  auto bb = b.backing_as<std::uint8_t>();
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(bb[16 + i], payload[8 + i]);
  }
  EXPECT_THROW(queue.enqueue_copy(a, b, 64, 8, 0), InvalidArgument);
}

TEST_F(QueueExtTest, CopyIsCheaperThanHostRoundTrip) {
  Buffer a = ctx.create_buffer("a", 1 << 20);
  Buffer b = ctx.create_buffer("b", 1 << 20);
  const Event dev = queue.enqueue_copy(a, b, 1 << 20);
  std::vector<std::uint8_t> host(1 << 20);
  const Event down = queue.enqueue_read(a, host.data(), host.size());
  // Device DRAM copy beats even one direction over PCIe.
  EXPECT_LT(dev.duration_us(), down.duration_us());
}

TEST_F(QueueExtTest, FillRepeatsPattern) {
  Buffer buf = ctx.create_buffer("b", 32);
  const std::uint32_t pattern = 0xA1B2C3D4;
  Event ev = queue.enqueue_fill(buf, &pattern, sizeof(pattern), 8, 16);
  EXPECT_EQ(ev.kind, CommandKind::kFill);
  auto words = buf.backing_as<std::uint32_t>();
  EXPECT_EQ(words[1], 0u);  // before the region
  EXPECT_EQ(words[2], pattern);
  EXPECT_EQ(words[5], pattern);
  EXPECT_EQ(words[6], 0u);  // after the region
  // Bad geometry: region not a multiple of the pattern.
  EXPECT_THROW(queue.enqueue_fill(buf, &pattern, 4, 0, 10),
               InvalidArgument);
  EXPECT_THROW(queue.enqueue_fill(buf, nullptr, 4, 0, 16), InvalidArgument);
}

TEST_F(QueueExtTest, ProfileAggregatesByNameAndPhase) {
  Buffer buf = ctx.create_buffer("b", 1024);
  std::vector<std::uint8_t> tmp(1024, 1);
  queue.set_phase("in");
  queue.enqueue_write(buf, tmp.data(), tmp.size());
  queue.enqueue_write(buf, tmp.data(), tmp.size());
  queue.set_phase("compute");
  Kernel k{.name = "touch",
           .body = [&](WorkItem& it) {
             auto p = it.global<std::uint8_t>(buf);
             p.store(static_cast<std::size_t>(it.global_id(0)), 2);
             it.alu(1);
           }};
  queue.enqueue_kernel(k, {.global = NDRange(1024), .local = NDRange(64)});
  queue.set_phase("out");
  queue.enqueue_read(buf, tmp.data(), tmp.size());

  const auto by_name = simcl::profile::by_name(queue.events());
  ASSERT_EQ(by_name.size(), 3u);
  EXPECT_EQ(by_name[0].key, "write:b");
  EXPECT_EQ(by_name[0].count, 2);
  EXPECT_EQ(by_name[1].key, "touch");
  EXPECT_EQ(by_name[1].stats.work_items, 1024u);
  EXPECT_EQ(by_name[2].key, "read:b");

  const auto by_phase = simcl::profile::by_phase(queue.events());
  ASSERT_EQ(by_phase.size(), 3u);
  EXPECT_EQ(by_phase[0].key, "in");
  EXPECT_EQ(by_phase[0].count, 2);
  EXPECT_EQ(by_phase[1].key, "compute");
  EXPECT_EQ(by_phase[2].key, "out");

  EXPECT_NEAR(simcl::profile::total_us(queue.events()),
              queue.timeline_us(), 1e-9);
  EXPECT_EQ(simcl::profile::transferred_bytes(queue.events()), 3 * 1024u);
  simcl::profile::TimelineViolation v;
  EXPECT_TRUE(simcl::profile::timeline_consistent(queue.events(), 1e-9, &v))
      << v.describe();
}

TEST_F(QueueExtTest, TimelineConsistencyDetectsTampering) {
  Buffer buf = ctx.create_buffer("b", 64);
  std::uint8_t tmp[64] = {};
  queue.enqueue_write(buf, tmp, 64);
  queue.enqueue_read(buf, tmp, 64);
  auto events = queue.events();
  EXPECT_TRUE(simcl::profile::timeline_consistent(events));

  events[1].start_us += 1.0;  // introduce a gap
  simcl::profile::TimelineViolation v;
  EXPECT_FALSE(simcl::profile::timeline_consistent(events, 1e-9, &v));
  EXPECT_EQ(v.index, 1u);
  EXPECT_EQ(v.prev_name, events[0].name);
  EXPECT_EQ(v.name, events[1].name);
  EXPECT_NEAR(v.gap_us, 1.0, 1e-9);
  EXPECT_FALSE(v.negative_duration);
  EXPECT_NE(v.describe().find("gap"), std::string::npos);

  events[1].start_us -= 1.0;
  events[1].end_us = events[1].start_us - 5.0;  // negative duration
  EXPECT_FALSE(simcl::profile::timeline_consistent(events, 1e-9, &v));
  EXPECT_EQ(v.index, 1u);
  EXPECT_TRUE(v.negative_duration);
  EXPECT_NE(v.describe().find("negative duration"), std::string::npos);

  // Overlap: event 1 starts before event 0 has ended.
  events[1].end_us = events[1].start_us + 5.0;
  events[1].start_us -= 2.0;
  events[1].end_us -= 2.0;
  EXPECT_FALSE(simcl::profile::timeline_consistent(events, 1e-9, &v));
  EXPECT_NEAR(v.gap_us, -2.0, 1e-9);
  EXPECT_NE(v.describe().find("overlaps"), std::string::npos);
}

}  // namespace
