// The static kernel-contract analyzer (contract.hpp): seeded violations
// of every check kind — out-of-bounds launch geometry, aliased
// read/write bindings, LDS overflow, work-group shape, element-size
// mismatch, divergent barriers — must be rejected with kernel/arg/object
// attribution *before any work-item runs*; valid declarations must be
// proven safe; and the engine's off/warn/enforce policy (plus the
// SIMCL_CHECKED observation cross-check that catches lying contracts)
// must behave.
#include "simcl/contract.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "simcl/queue.hpp"

namespace {

using namespace simcl;
namespace ct = simcl::contract;

/// A kernel whose body touches nothing: every diagnostic of these tests
/// comes from the *declaration*, proving the analyzer needs no execution.
Kernel noop_kernel(std::shared_ptr<ct::KernelContract> kc,
                   bool uses_barriers = false) {
  return Kernel{.name = "contract_probe",
                .uses_barriers = uses_barriers,
                .body = [](WorkItem&) {},
                .body_warp = {},
                .contract = std::move(kc)};
}

bool has_kind(const ct::Report& r, ct::CheckKind kind) {
  for (const auto& d : r.diagnostics) {
    if (d.kind == kind) {
      return true;
    }
  }
  return false;
}

class ContractTest : public ::testing::Test {
 protected:
  ContractTest() : ctx(amd_firepro_w8000()) {}

  ct::Report analyze(const Kernel& k, const LaunchConfig& cfg) {
    return ct::analyze(k, cfg, ctx.device());
  }

  Context ctx;
};

// --- mode parsing -----------------------------------------------------------

TEST(ContractModeTest, ParseRecognizesEverySpelling) {
  EXPECT_EQ(ct::parse_mode(nullptr), ct::Mode::kWarn);
  EXPECT_EQ(ct::parse_mode(""), ct::Mode::kWarn);
  EXPECT_EQ(ct::parse_mode("warn"), ct::Mode::kWarn);
  EXPECT_EQ(ct::parse_mode("off"), ct::Mode::kOff);
  EXPECT_EQ(ct::parse_mode("0"), ct::Mode::kOff);
  EXPECT_EQ(ct::parse_mode("none"), ct::Mode::kOff);
  EXPECT_EQ(ct::parse_mode("enforce"), ct::Mode::kEnforce);
  EXPECT_EQ(ct::parse_mode("1"), ct::Mode::kEnforce);
  EXPECT_EQ(ct::parse_mode("on"), ct::Mode::kEnforce);
  EXPECT_THROW((void)ct::parse_mode("sometimes"), InvalidArgument);
}

// --- expression evaluation --------------------------------------------------

TEST(ContractExprTest, IntervalExtremesFollowCoefficientSigns) {
  // 10 + 8*gy - 2*floor(gx/4): max at gy_hi & gx_lo, min at gy_lo & gx_hi.
  const ct::Expr e = 10 + ct::gy(8) + ct::gx(-2, 4);
  const std::int64_t lo[ct::kVarCount] = {0, 0, 0, 0, 0, 0};
  const std::int64_t hi[ct::kVarCount] = {15, 3, 0, 0, 0, 0};
  EXPECT_EQ(e.eval_extreme(lo, hi, /*want_max=*/true), 10 + 24 - 0);
  EXPECT_EQ(e.eval_extreme(lo, hi, /*want_max=*/false), 10 + 0 - 6);
  std::int64_t at[ct::kVarCount] = {9, 2, 0, 0, 0, 0};
  EXPECT_EQ(e.eval(at), 10 + 16 - 4);
}

// --- out-of-bounds proofs ---------------------------------------------------

TEST_F(ContractTest, RejectsOutOfBoundsLaunchGeometry) {
  Buffer buf = ctx.create_buffer("out", 16 * sizeof(float));
  auto kc = std::make_shared<ct::KernelContract>();
  kc->arg("dst", buf, sizeof(float)).writes(ct::gx(), ct::gx());
  const Kernel k = noop_kernel(kc);

  // 16 elements, 16 items: provably safe.
  EXPECT_TRUE(analyze(k, {.global = NDRange(16), .local = NDRange(8)}).ok());

  // 32 items with no guard domain: item 31 writes element 31.
  const ct::Report r =
      analyze(k, {.global = NDRange(32), .local = NDRange(8)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.diagnostics[0].kind, ct::CheckKind::kOutOfBounds);
  EXPECT_EQ(r.diagnostics[0].kernel, "contract_probe");
  EXPECT_EQ(r.diagnostics[0].arg, "dst");
  EXPECT_EQ(r.diagnostics[0].object, "out");
  EXPECT_NE(r.to_string().find("out-of-bounds"), std::string::npos);
}

TEST_F(ContractTest, DomainGuardMakesRoundedUpLaunchSafe) {
  Buffer buf = ctx.create_buffer("out", 16 * sizeof(float));
  auto kc = std::make_shared<ct::KernelContract>();
  // The `if (x >= 16) return;` guard of a rounded-up launch.
  kc->arg("dst", buf, sizeof(float))
      .writes(ct::gx(), ct::gx(), {.x_lo = 0, .x_hi = 15});
  EXPECT_TRUE(analyze(noop_kernel(kc),
                      {.global = NDRange(32), .local = NDRange(8)})
                  .ok());
}

TEST_F(ContractTest, CapModelsIndexCountGuard) {
  Buffer buf = ctx.create_buffer("out", 16 * sizeof(float));
  auto kc = std::make_shared<ct::KernelContract>();
  // Strided access gx*4 with an `idx < 16` guard inside the kernel.
  kc->arg("dst", buf, sizeof(float))
      .writes(ct::gx(4), ct::gx(4), {}, /*cap=*/15);
  EXPECT_TRUE(analyze(noop_kernel(kc),
                      {.global = NDRange(32), .local = NDRange(8)})
                  .ok());
}

TEST_F(ContractTest, EmptyDomainMeansNoItemAccesses) {
  Buffer buf = ctx.create_buffer("out", 4);
  auto kc = std::make_shared<ct::KernelContract>();
  kc->arg("dst", buf, 1).writes(ct::gx(), ct::gx(), {.x_lo = 100});
  EXPECT_TRUE(analyze(noop_kernel(kc),
                      {.global = NDRange(8), .local = NDRange(8)})
                  .ok());
}

// --- aliasing ---------------------------------------------------------------

TEST_F(ContractTest, RejectsAliasedReadWriteBinding) {
  Buffer buf = ctx.create_buffer("shared", 64 * sizeof(float));
  auto kc = std::make_shared<ct::KernelContract>();
  kc->arg("src", buf, sizeof(float)).reads(0, 63);
  kc->arg("dst", buf, sizeof(float)).writes(ct::gx(), ct::gx());
  const ct::Report r = analyze(noop_kernel(kc),
                               {.global = NDRange(64), .local = NDRange(8)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.diagnostics[0].kind, ct::CheckKind::kAliasing);
  EXPECT_EQ(r.diagnostics[0].arg, "src/dst");
  EXPECT_EQ(r.diagnostics[0].object, "shared");
}

TEST_F(ContractTest, DisjointFootprintsOnOneObjectAreSafe) {
  Buffer buf = ctx.create_buffer("shared", 64 * sizeof(float));
  auto kc = std::make_shared<ct::KernelContract>();
  kc->arg("src", buf, sizeof(float)).reads(0, 31);
  kc->arg("dst", buf, sizeof(float))
      .writes(32 + ct::gx(), 32 + ct::gx(), {.x_hi = 31});
  EXPECT_TRUE(analyze(noop_kernel(kc),
                      {.global = NDRange(32), .local = NDRange(8)})
                  .ok());
}

TEST_F(ContractTest, AtomicFootprintsAreAliasingExempt) {
  Buffer buf = ctx.create_buffer("acc", 64 * sizeof(std::int32_t));
  auto kc = std::make_shared<ct::KernelContract>();
  kc->arg("in", buf, sizeof(std::int32_t)).reads(0, 63);
  kc->arg("acc", buf, sizeof(std::int32_t)).atomics(0, 0);
  EXPECT_TRUE(analyze(noop_kernel(kc),
                      {.global = NDRange(64), .local = NDRange(8)})
                  .ok());
}

// --- LDS / local shape ------------------------------------------------------

TEST_F(ContractTest, RejectsLdsOverflow) {
  auto kc = std::make_shared<ct::KernelContract>();
  kc->lds_array(ctx.device().local_mem_bytes + 1);
  kc->uniform_barriers();
  const ct::Report r = analyze(noop_kernel(kc, /*uses_barriers=*/true),
                               {.global = NDRange(64), .local = NDRange(64)});
  ASSERT_TRUE(has_kind(r, ct::CheckKind::kLdsOverflow));
}

TEST_F(ContractTest, PerItemLdsScalesWithLocalSize) {
  auto kc = std::make_shared<ct::KernelContract>();
  // One i64 per work-item: fine at 64 items, overflows at 32Ki items.
  kc->lds_array(0, sizeof(std::int64_t));
  EXPECT_TRUE(analyze(noop_kernel(kc),
                      {.global = NDRange(64), .local = NDRange(64)})
                  .ok());
  const std::size_t huge = ctx.device().local_mem_bytes;
  const ct::Report r = analyze(
      noop_kernel(kc), {.global = NDRange(huge), .local = NDRange(huge)});
  EXPECT_TRUE(has_kind(r, ct::CheckKind::kLdsOverflow));
}

TEST_F(ContractTest, RejectsWrongWorkGroupShape) {
  auto kc = std::make_shared<ct::KernelContract>();
  kc->requires_local(16, 16);
  const ct::Report r =
      analyze(noop_kernel(kc),
              {.global = NDRange(64, 64), .local = NDRange(8, 8)});
  ASSERT_EQ(r.diagnostics.size(), 2u);  // x and y both wrong
  EXPECT_EQ(r.diagnostics[0].kind, ct::CheckKind::kLocalShape);
  EXPECT_TRUE(analyze(noop_kernel(kc), {.global = NDRange(64, 64),
                                        .local = NDRange(16, 16)})
                  .ok());
}

// --- argument mismatch ------------------------------------------------------

TEST_F(ContractTest, RejectsElementSizeMismatch) {
  // 10 bytes cannot be reinterpreted as float[]: the accessor would
  // truncate, so the declared element size is a type mismatch.
  Buffer buf = ctx.create_buffer("odd", 10);
  auto kc = std::make_shared<ct::KernelContract>();
  kc->arg("dst", buf, sizeof(float)).writes(0, 0);
  const ct::Report r = analyze(noop_kernel(kc),
                               {.global = NDRange(8), .local = NDRange(8)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.diagnostics[0].kind, ct::CheckKind::kArgMismatch);
  EXPECT_EQ(r.diagnostics[0].object, "odd");
}

TEST_F(ContractTest, RejectsImageTexelMismatch) {
  Image2D img = ctx.create_image2d("tex", ChannelFormat::kR_U8, 8, 8);
  auto kc = std::make_shared<ct::KernelContract>();
  kc->arg("src", img, sizeof(float)).reads(0, 63);
  const ct::Report r = analyze(noop_kernel(kc),
                               {.global = NDRange(8), .local = NDRange(8)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.diagnostics[0].kind, ct::CheckKind::kArgMismatch);
}

TEST_F(ContractTest, RejectsReleasedObject) {
  Buffer buf = ctx.create_buffer("gone", 16);
  auto kc = std::make_shared<ct::KernelContract>();
  kc->arg("dst", buf, 1).writes(0, 0);
  buf.release();
  const ct::Report r = analyze(noop_kernel(kc),
                               {.global = NDRange(8), .local = NDRange(8)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.diagnostics[0].kind, ct::CheckKind::kArgMismatch);
}

// --- barriers ---------------------------------------------------------------

TEST_F(ContractTest, RejectsBarrierInDivergentFlow) {
  auto kc = std::make_shared<ct::KernelContract>();
  kc->divergent_barriers();
  const ct::Report r = analyze(noop_kernel(kc, /*uses_barriers=*/true),
                               {.global = NDRange(64), .local = NDRange(64)});
  ASSERT_TRUE(has_kind(r, ct::CheckKind::kBarrierDivergence));
}

TEST_F(ContractTest, RejectsBarrierDeclarationMismatch) {
  auto kc = std::make_shared<ct::KernelContract>();
  kc->uniform_barriers();
  const ct::Report r = analyze(noop_kernel(kc, /*uses_barriers=*/false),
                               {.global = NDRange(64), .local = NDRange(64)});
  ASSERT_TRUE(has_kind(r, ct::CheckKind::kInconsistent));
}

TEST_F(ContractTest, KernelWithoutContractIsItselfADiagnostic) {
  const Kernel bare{
      .name = "bare", .body = [](WorkItem&) {}, .body_warp = {},
      .contract = {}};
  const ct::Report r = analyze(bare,
                               {.global = NDRange(8), .local = NDRange(8)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.diagnostics[0].kind, ct::CheckKind::kInconsistent);
}

// --- engine policy ----------------------------------------------------------

class ContractModeFixture : public ::testing::Test {
 protected:
  ContractModeFixture() : ctx(amd_firepro_w8000()), queue(ctx) {}

  /// A launch whose declared write provably overruns its buffer (the body
  /// itself stays in bounds, so warn mode can execute it).
  Kernel violating_kernel() {
    buf.emplace(ctx.create_buffer("small", 16 * sizeof(float)));
    auto kc = std::make_shared<ct::KernelContract>();
    kc->arg("dst", *buf, sizeof(float)).writes(ct::gx(), ct::gx());
    return Kernel{.name = "overrun_probe",
                  .body =
                      [this](WorkItem& it) {
                        auto p = it.global<float>(*buf);
                        if (it.global_id(0) == 0) {
                          p.store(0, 1.0F);
                        }
                      },
                  .body_warp = {},
                  .contract = std::move(kc)};
  }

  Context ctx;
  CommandQueue queue;
  std::optional<Buffer> buf;
  const LaunchConfig oob_cfg{.global = NDRange(32), .local = NDRange(8)};
};

TEST_F(ContractModeFixture, EnforceRejectsBeforeExecution) {
  queue.set_contract_mode(ct::Mode::kEnforce);
  const Kernel k = violating_kernel();
  try {
    queue.enqueue_kernel(k, oob_cfg);
    FAIL() << "expected ContractError";
  } catch (const ct::ContractError& e) {
    ASSERT_FALSE(e.report().ok());
    EXPECT_EQ(e.report().diagnostics[0].kind, ct::CheckKind::kOutOfBounds);
    EXPECT_NE(std::string(e.what()).find("overrun_probe"), std::string::npos);
  }
  EXPECT_EQ(ctx.engine().contract_checked_launches(), 1u);
  EXPECT_EQ(ctx.engine().contract_violation_launches(), 1u);
  // Nothing executed: no kernel event was recorded.
  EXPECT_TRUE(queue.events().empty());
}

TEST_F(ContractModeFixture, WarnCountsButStillExecutes) {
  queue.set_contract_mode(ct::Mode::kWarn);
  const Kernel k = violating_kernel();
  queue.enqueue_kernel(k, oob_cfg);
  queue.enqueue_kernel(k, oob_cfg);  // second warning is deduplicated
  EXPECT_EQ(ctx.engine().contract_checked_launches(), 2u);
  EXPECT_EQ(ctx.engine().contract_violation_launches(), 2u);
  EXPECT_EQ(queue.events().size(), 2u);
}

TEST_F(ContractModeFixture, OffSkipsTheAnalyzerEntirely) {
  queue.set_contract_mode(ct::Mode::kOff);
  EXPECT_EQ(queue.contract_mode(), ct::Mode::kOff);
  queue.enqueue_kernel(violating_kernel(), oob_cfg);
  EXPECT_EQ(ctx.engine().contract_checked_launches(), 0u);
  EXPECT_EQ(ctx.engine().contract_violation_launches(), 0u);
}

TEST_F(ContractModeFixture, CleanLaunchPassesUnderEnforce) {
  queue.set_contract_mode(ct::Mode::kEnforce);
  const Kernel k = violating_kernel();
  // Same kernel, a launch the guard-free footprint actually fits.
  queue.enqueue_kernel(k, {.global = NDRange(16), .local = NDRange(8)});
  EXPECT_EQ(ctx.engine().contract_checked_launches(), 1u);
  EXPECT_EQ(ctx.engine().contract_violation_launches(), 0u);
}

// --- observation cross-check (lying contracts; SIMCL_CHECKED builds) --------

class ContractObservationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!checked_build()) {
      GTEST_SKIP() << "requires a SIMCL_CHECKED build";
    }
    ctx.emplace(amd_firepro_w8000());
    ctx->set_validation(ValidationSettings::full());
    ctx->engine().set_contract_mode(ct::Mode::kWarn);
  }

  std::optional<Context> ctx;
};

TEST_F(ContractObservationTest, ObservedAccessOutsideFootprintIsCaught) {
  Buffer buf = ctx->create_buffer("narrow", 16 * sizeof(float));
  auto kc = std::make_shared<ct::KernelContract>();
  kc->arg("dst", buf, sizeof(float)).writes(0, 0);  // claims element 0 only
  const Kernel k{.name = "lying_contract",
                 .body =
                     [&](WorkItem& it) {
                       if (it.global_id(0) == 2) {
                         // In bounds for the buffer, outside the contract.
                         it.global<float>(buf).store(5, 1.0F);
                       }
                     },
                 .body_warp = {},
                 .contract = std::move(kc)};
  try {
    ctx->engine().run(k, {.global = NDRange(4), .local = NDRange(4)});
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.violation().kind, ViolationKind::kContractMismatch);
    EXPECT_EQ(e.violation().kernel, "lying_contract");
    EXPECT_EQ(e.violation().object, "narrow");
    EXPECT_EQ(e.violation().global_id[0], 2);
  }
}

TEST_F(ContractObservationTest, AccessorElementSizeMismatchIsCaught) {
  Buffer buf = ctx->create_buffer("typed", 16 * sizeof(float));
  auto kc = std::make_shared<ct::KernelContract>();
  // Declares 8-byte elements; the body's float accessor uses 4.
  kc->arg("dst", buf, sizeof(double)).writes(0, 1);
  const Kernel k{.name = "size_liar",
                 .body =
                     [&](WorkItem& it) {
                       it.global<float>(buf).store(0, 1.0F);
                     },
                 .body_warp = {},
                 .contract = std::move(kc)};
  EXPECT_THROW(
      ctx->engine().run(k, {.global = NDRange(1), .local = NDRange(1)}),
      ValidationError);
}

TEST_F(ContractObservationTest, TruthfulContractRunsCleanUnderValidation) {
  Buffer buf = ctx->create_buffer("honest", 16 * sizeof(float));
  auto kc = std::make_shared<ct::KernelContract>();
  kc->arg("dst", buf, sizeof(float)).writes(ct::gx(), ct::gx());
  const Kernel k{.name = "honest_kernel",
                 .body =
                     [&](WorkItem& it) {
                       it.global<float>(buf).store(
                           static_cast<std::size_t>(it.global_id(0)), 1.0F);
                     },
                 .body_warp = {},
                 .contract = std::move(kc)};
  EXPECT_NO_THROW(
      ctx->engine().run(k, {.global = NDRange(16), .local = NDRange(8)}));
}

}  // namespace
