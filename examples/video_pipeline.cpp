// Real-time video sharpening — the TV/camera use case that motivates the
// paper's introduction. Sharpens a sequence of 720p frames and reports
// whether the modeled CPU and GPU keep up with common frame rates.
//
//   ./examples/video_pipeline [frames]
#include <cstdlib>
#include <iostream>

#include "image/generate.hpp"
#include "sharpen/sharpen.hpp"

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 12;
  constexpr int kWidth = 1280;
  constexpr int kHeight = 720;

  sharp::CpuPipeline cpu;
  sharp::GpuPipeline gpu;  // all paper optimizations on
  sharp::SharpenParams params;
  params.amount = 1.2f;  // gentler setting for video

  double cpu_total_us = 0.0;
  double gpu_total_us = 0.0;
  for (int f = 0; f < frames; ++f) {
    // Each frame gets fresh content (a new noise seed) so no stage can
    // cheat by caching.
    const auto frame = sharp::img::make_natural(
        kWidth, kHeight, 1000 + static_cast<std::uint64_t>(f));
    cpu_total_us += cpu.run(frame, params).total_modeled_us;
    gpu_total_us += gpu.run(frame, params).total_modeled_us;
  }

  const double cpu_ms = cpu_total_us / frames / 1e3;
  const double gpu_ms = gpu_total_us / frames / 1e3;
  std::cout << "720p frames processed: " << frames << '\n'
            << "modeled CPU per frame: " << cpu_ms << " ms  ("
            << 1000.0 / cpu_ms << " fps)\n"
            << "modeled GPU per frame: " << gpu_ms << " ms  ("
            << 1000.0 / gpu_ms << " fps)\n";
  for (const double target : {24.0, 30.0, 60.0}) {
    const double budget_ms = 1000.0 / target;
    std::cout << target << " fps budget (" << budget_ms << " ms): CPU "
              << (cpu_ms <= budget_ms ? "OK" : "MISSES") << ", GPU "
              << (gpu_ms <= budget_ms ? "OK" : "MISSES") << '\n';
  }
  return 0;
}
