// Serving demo: a SharpenService pool handling mixed-resolution traffic
// (512^2 .. 4096^2) submitted concurrently, with per-request deadlines
// and a final stats snapshot. Shows the futures API end to end:
//
//   submit -> future<ServiceResponse> -> outcome + pixels + modeled time
#include <future>
#include <iostream>
#include <vector>

#include "image/generate.hpp"
#include "report/table.hpp"
#include "sharpen/sharpen.hpp"
#include "sharpen/telemetry/metrics.hpp"

int main() {
  using sharp::report::fmt;

  sharp::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  cfg.backpressure = sharp::BackpressurePolicy::kBlock;
  sharp::SharpenService service(cfg);

  // Mixed traffic: mostly HD-ish frames with occasional large stills.
  const std::vector<int> sizes{512, 1024, 512, 2048, 1024, 512,
                               4096, 512, 1024, 2048};

  std::vector<std::future<sharp::ServiceResponse>> futures;
  futures.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    sharp::SubmitOptions opts;
    opts.deadline = std::chrono::seconds(30);  // generous; nothing expires
    futures.push_back(service.submit(
        sharp::img::make_natural(sizes[i], sizes[i], i + 1), {}, opts));
  }

  sharp::report::banner(std::cout, "Serving mixed 512^2..4096^2 traffic");
  sharp::report::Table t(
      {"request", "size", "outcome", "worker", "modeled_ms"});
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const sharp::ServiceResponse r = futures[i].get();
    t.add_row({std::to_string(i),
               sharp::report::size_label(sizes[i], sizes[i]),
               sharp::service::to_string(r.outcome),
               std::to_string(r.worker),
               fmt(r.result.total_modeled_us / 1e3, 3)});
  }
  t.print(std::cout);

  std::cout << '\n';
  sharp::report::banner(std::cout, "Service stats");
  service.stats().to_table().print(std::cout);

  // The same numbers, as a Prometheus-style scrape a sidecar would serve.
  std::cout << '\n';
  sharp::report::banner(std::cout, "Metrics exposition (/metrics)");
  std::cout << sharp::telemetry::expose_text(service.registry());
  return 0;
}
