// Serving demo: a SharpenService pool handling mixed-resolution traffic
// (512^2 .. 4096^2) submitted concurrently, with per-request deadlines,
// request-id trace correlation, and the live observability plane:
//
//   submit -> future<ServiceResponse> -> outcome + pixels + modeled time
//   GET /metrics | /healthz | /trace  -> embedded HTTP endpoint
//   SHARP_TRACE_STREAM=<path>         -> streamed JSONL span trace
//
// The demo binds the endpoint on an ephemeral port (or
// $SHARP_METRICS_PORT), prints the scrape URL, and scrapes /metrics over
// a real client socket before shutting down. An optional argv[1] saves
// that scrape body to a file so CI can validate it with
// tools/check_metrics.py.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "image/generate.hpp"
#include "report/table.hpp"
#include "sharpen/env.hpp"
#include "sharpen/sharpen.hpp"
#include "sharpen/telemetry/metrics.hpp"
#include "sharpen/telemetry/stream_sink.hpp"
#include "sharpen/telemetry/telemetry.hpp"

namespace {

/// Minimal loopback HTTP GET (the in-process scrape): returns the
/// response body, or an empty string on any socket failure.
std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? std::string{} : response.substr(body + 4);
}

}  // namespace

int main(int argc, char** argv) {
  using sharp::report::fmt;

  // Record spans so /trace and the streamed JSONL have content; the
  // stream sink itself only runs when $SHARP_TRACE_STREAM is set.
  sharp::telemetry::set_enabled(true);

  sharp::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  cfg.backpressure = sharp::BackpressurePolicy::kBlock;
  // Ephemeral port unless $SHARP_METRICS_PORT picks a fixed one.
  cfg.metrics_port = sharp::env::metrics_port().value_or(0);
  sharp::SharpenService service(cfg);

  const int port = service.metrics_port().value_or(0);
  std::cout << "observability endpoint: http://127.0.0.1:" << port
            << "  (GET /metrics, /healthz, /trace)\n";
  if (const auto stream = sharp::env::trace_stream()) {
    std::cout << "streaming spans to: " << *stream << " (JSONL)\n";
  }
  std::cout << '\n';

  // Mixed traffic: mostly HD-ish frames with occasional large stills.
  const std::vector<int> sizes{512, 1024, 512, 2048, 1024, 512,
                               4096, 512, 1024, 2048};

  std::vector<std::future<sharp::ServiceResponse>> futures;
  futures.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    sharp::SubmitOptions opts;
    opts.deadline = std::chrono::seconds(30);  // generous; nothing expires
    futures.push_back(service.submit(
        sharp::img::make_natural(sizes[i], sizes[i], i + 1), {}, opts));
  }

  sharp::report::banner(std::cout, "Serving mixed 512^2..4096^2 traffic");
  sharp::report::Table t(
      {"request", "req_id", "size", "outcome", "worker", "modeled_ms"});
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const sharp::ServiceResponse r = futures[i].get();
    t.add_row({std::to_string(i), std::to_string(r.request_id),
               sharp::report::size_label(sizes[i], sizes[i]),
               sharp::service::to_string(r.outcome),
               std::to_string(r.worker),
               fmt(r.result.total_modeled_us / 1e3, 3)});
  }
  t.print(std::cout);

  std::cout << '\n';
  sharp::report::banner(std::cout, "Service stats");
  service.stats().to_table().print(std::cout);

  // Scrape the live endpoint the way Prometheus would: a real HTTP GET
  // against the listening socket, while the service is still up.
  const std::string health = http_get(port, "/healthz");
  const std::string metrics = http_get(port, "/metrics");
  std::cout << '\n';
  sharp::report::banner(std::cout, "GET /healthz");
  std::cout << health << '\n';
  sharp::report::banner(std::cout, "GET /metrics (scraped over HTTP)");
  std::cout << metrics;

  if (argc > 1) {
    std::ofstream out(argv[1], std::ios::trunc);
    out << metrics;
    std::cout << "\nsaved /metrics scrape to " << argv[1] << '\n';
  }
  if (sharp::telemetry::StreamSink* sink =
          sharp::telemetry::env_stream_sink()) {
    sink->flush();
    std::cout << "streamed " << sink->spans_streamed() << " spans ("
              << sink->bytes_written() << " bytes, " << sink->rotations()
              << " rotations)\n";
  }
  return metrics.empty() ? 1 : 0;
}
