// Serving demo: a SharpenService pool handling mixed-resolution traffic
// (512^2 .. 4096^2) submitted concurrently, with per-request deadlines,
// request-id trace correlation, and the live observability plane:
//
//   submit -> future<ServiceResponse> -> outcome + pixels + modeled time
//   GET /metrics | /healthz | /trace  -> embedded HTTP endpoint
//   SHARP_TRACE_STREAM=<path>         -> streamed JSONL span trace
//
// The demo binds the endpoint on an ephemeral port (or
// $SHARP_METRICS_PORT), prints the scrape URL, and scrapes /metrics over
// a real client socket before shutting down. An optional positional
// argument saves that scrape body to a file so CI can validate it with
// tools/check_metrics.py; --batch N turns the micro-batching plane on
// (ServiceConfig::max_batch) and adds a same-geometry 512^2 burst to the
// traffic so the planner has something to coalesce.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "image/generate.hpp"
#include "report/table.hpp"
#include "sharpen/env.hpp"
#include "sharpen/sharpen.hpp"
#include "sharpen/telemetry/metrics.hpp"
#include "sharpen/telemetry/stream_sink.hpp"
#include "sharpen/telemetry/telemetry.hpp"

namespace {

/// Minimal loopback HTTP GET (the in-process scrape): returns the
/// response body, or an empty string on any socket failure.
std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? std::string{} : response.substr(body + 4);
}

}  // namespace

int main(int argc, char** argv) {
  using sharp::report::fmt;

  // Record spans so /trace and the streamed JSONL have content; the
  // stream sink itself only runs when $SHARP_TRACE_STREAM is set.
  sharp::telemetry::set_enabled(true);

  int max_batch = 0;  // 0 = defer to $SHARP_BATCH (unset: batching off)
  const char* scrape_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      max_batch = std::atoi(argv[++i]);
    } else {
      scrape_path = argv[i];
    }
  }

  sharp::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  cfg.backpressure = sharp::BackpressurePolicy::kBlock;
  if (max_batch > 0) {
    cfg.max_batch = max_batch;
    // A short gather window so a worker that drains ahead of the
    // submitters still coalesces the burst below.
    cfg.batch_window_us = 2000;
    cfg.queue_capacity = 16;
  }
  // Ephemeral port unless $SHARP_METRICS_PORT picks a fixed one.
  cfg.metrics_port = sharp::env::metrics_port().value_or(0);
  sharp::SharpenService service(cfg);

  const int port = service.metrics_port().value_or(0);
  std::cout << "observability endpoint: http://127.0.0.1:" << port
            << "  (GET /metrics, /healthz, /trace)\n";
  if (const auto stream = sharp::env::trace_stream()) {
    std::cout << "streaming spans to: " << *stream << " (JSONL)\n";
  }
  std::cout << '\n';

  // Mixed traffic: mostly HD-ish frames with occasional large stills.
  std::vector<int> sizes{512, 1024, 512, 2048, 1024, 512,
                         4096, 512, 1024, 2048};
  if (max_batch > 1) {
    // Same-geometry burst: the batch planner can only coalesce
    // compatible neighbors, so give it a run of identical frames.
    sizes.insert(sizes.end(), 8, 512);
  }

  std::vector<std::future<sharp::ServiceResponse>> futures;
  futures.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    sharp::SubmitOptions opts;
    opts.deadline = std::chrono::seconds(30);  // generous; nothing expires
    futures.push_back(service.submit(
        sharp::img::make_natural(sizes[i], sizes[i], i + 1), {}, opts));
  }

  sharp::report::banner(std::cout, "Serving mixed 512^2..4096^2 traffic");
  sharp::report::Table t(
      {"request", "req_id", "size", "outcome", "worker", "modeled_ms"});
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const sharp::ServiceResponse r = futures[i].get();
    t.add_row({std::to_string(i), std::to_string(r.request_id),
               sharp::report::size_label(sizes[i], sizes[i]),
               sharp::service::to_string(r.outcome),
               std::to_string(r.worker),
               fmt(r.result.total_modeled_us / 1e3, 3)});
  }
  t.print(std::cout);

  std::cout << '\n';
  sharp::report::banner(std::cout, "Service stats");
  const sharp::ServiceStats stats = service.stats();
  stats.to_table().print(std::cout);
  std::cout << "batch occupancy: " << fmt(stats.avg_batch_size, 2)
            << " requests/dequeue over " << stats.batches
            << " dequeue groups (max_batch="
            << service.config().max_batch << ")\n";

  // Scrape the live endpoint the way Prometheus would: a real HTTP GET
  // against the listening socket, while the service is still up.
  const std::string health = http_get(port, "/healthz");
  const std::string metrics = http_get(port, "/metrics");
  std::cout << '\n';
  sharp::report::banner(std::cout, "GET /healthz");
  std::cout << health << '\n';
  sharp::report::banner(std::cout, "GET /metrics (scraped over HTTP)");
  std::cout << metrics;

  if (scrape_path != nullptr) {
    std::ofstream out(scrape_path, std::ios::trunc);
    out << metrics;
    std::cout << "\nsaved /metrics scrape to " << scrape_path << '\n';
  }
  if (sharp::telemetry::StreamSink* sink =
          sharp::telemetry::env_stream_sink()) {
    sink->flush();
    std::cout << "streamed " << sink->spans_streamed() << " spans ("
              << sink->bytes_written() << " bytes, " << sink->rotations()
              << " rotations)\n";
  }
  return metrics.empty() ? 1 : 0;
}
