// A small command-line photo sharpener exercising the full public API:
// reads a binary PGM/PPM (or generates a test image), applies the
// sharpness algorithm with user-chosen parameters, writes the result.
// Color PPM input is sharpened through its luma channel (sharpen_rgb).
//
//   ./examples/photo_tool [--in photo.pgm|photo.ppm] [--out out.pgm]
//                         [--amount 1.5] [--gamma 0.5] [--osc 0.25]
//                         [--cpu] [--color]
//
// Input dimensions must be multiples of 4 (the algorithm's tiling); other
// images are center-cropped to the nearest valid size.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "image/color.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"
#include "image/pnm.hpp"
#include "sharpen/sharpen.hpp"

namespace {

template <typename ImageT>
ImageT crop_to_multiple_of_4(const ImageT& img) {
  const int w = img.width() / 4 * 4;
  const int h = img.height() / 4 * 4;
  if (w == img.width() && h == img.height()) {
    return img;
  }
  ImageT out(w, h);
  const int x0 = (img.width() - w) / 2;
  const int y0 = (img.height() - h) / 2;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      out(x, y) = img(x + x0, y + y0);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path = "sharpened.pgm";
  sharp::SharpenParams params;
  bool use_cpu = false;
  bool color = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--in") {
      in_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--amount") {
      params.amount = std::strtof(next(), nullptr);
    } else if (arg == "--gamma") {
      params.gamma = std::strtof(next(), nullptr);
    } else if (arg == "--osc") {
      params.osc_gain = std::strtof(next(), nullptr);
    } else if (arg == "--cpu") {
      use_cpu = true;
    } else if (arg == "--color") {
      color = true;
    } else {
      std::cerr << "usage: photo_tool [--in f.pgm|f.ppm] [--out f] "
                   "[--amount A] [--gamma G] [--osc O] [--cpu] [--color]\n";
      return 2;
    }
  }

  try {
    if (color) {
      sharp::img::ImageRgb input =
          in_path.empty()
              ? sharp::img::make_rgb_natural(768, 512, 99)
              : crop_to_multiple_of_4(sharp::img::read_ppm(in_path));
      if (in_path.empty()) {
        std::cout << "(no --in given; using a generated 768x512 RGB test "
                     "image)\n";
      }
      const sharp::img::ImageRgb result =
          use_cpu ? sharp::sharpen_rgb_cpu(input, params)
                  : sharp::sharpen_rgb(input, params);
      sharp::img::write_ppm(out_path, result);
      std::cout << "input:  " << input.width() << "x" << input.height()
                << " (RGB)  luma edge energy "
                << sharp::img::edge_energy(sharp::img::luma(input)) << '\n'
                << "output: " << out_path << "  luma edge energy "
                << sharp::img::edge_energy(sharp::img::luma(result))
                << '\n';
    } else {
      sharp::img::ImageU8 input =
          in_path.empty()
              ? sharp::img::make_natural(768, 512, 99)
              : crop_to_multiple_of_4(sharp::img::read_pgm(in_path));
      if (in_path.empty()) {
        std::cout
            << "(no --in given; using a generated 768x512 test image)\n";
      }
      const sharp::Execution exec =
          use_cpu ? sharp::Execution::cpu() : sharp::Execution::gpu();
      const sharp::img::ImageU8 result =
          sharp::sharpen(input, params, exec);
      sharp::img::write_pgm(out_path, result);
      std::cout << "input:  " << input.width() << "x" << input.height()
                << "  edge energy " << sharp::img::edge_energy(input)
                << '\n'
                << "output: " << out_path << "  edge energy "
                << sharp::img::edge_energy(result) << '\n';
    }
    std::cout << "params: amount=" << params.amount
              << " gamma=" << params.gamma << " osc=" << params.osc_gain
              << " backend=" << (use_cpu ? "cpu" : "gpu-sim") << '\n';
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
