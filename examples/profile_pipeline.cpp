// Pipeline profiler: runs the GPU pipeline under a chosen option preset
// and prints the full simulated command timeline — the same event log the
// Fig. 13 breakdowns are built from. Useful for understanding where each
// optimization moves time.
//
//   ./examples/profile_pipeline [size] [naive|optimized]
//
// With SHARP_TRACE=trace.json set, the same run also lands as a Chrome
// trace (open in Perfetto or chrome://tracing).
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "image/generate.hpp"
#include "sharpen/sharpen.hpp"
#include "sharpen/telemetry/metrics.hpp"
#include "sharpen/telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  const int size = argc > 1 ? std::atoi(argv[1]) : 1024;
  const std::string preset = argc > 2 ? argv[2] : "optimized";
  const sharp::PipelineOptions options =
      preset == "naive" ? sharp::PipelineOptions::naive()
                        : sharp::PipelineOptions::optimized();

  const auto input = sharp::img::make_natural(size, size, 1);
  sharp::GpuPipeline pipeline(options);
  const sharp::PipelineResult result = pipeline.run(input);

  std::cout << "pipeline: " << preset << ", image " << size << "x" << size
            << ", total " << result.total_modeled_us / 1e3 << " ms, mean "
            << "edge " << result.mean_edge << "\n\n"
            << std::left << std::setw(10) << "start_us" << std::setw(10)
            << "dur_us" << std::setw(12) << "phase" << std::setw(22)
            << "command" << "detail\n";
  for (const auto& ev : pipeline.last_events()) {
    std::cout << std::left << std::setw(10) << std::fixed
              << std::setprecision(1) << ev.start_us << std::setw(10)
              << ev.duration_us() << std::setw(12) << ev.phase
              << std::setw(22) << ev.name;
    if (ev.kind == simcl::CommandKind::kKernel) {
      std::cout << "items=" << ev.stats.work_items
                << " loads=" << ev.stats.global_loads
                << " stores=" << ev.stats.global_stores
                << " dramB=" << ev.stats.l1_miss_lines * 64
                << " barriers=" << ev.stats.barrier_events;
    } else if (ev.bytes > 0) {
      std::cout << "bytes=" << ev.bytes;
    }
    std::cout << '\n';
  }

  std::cout << "\nper-phase totals:\n";
  for (const auto& s : result.stages) {
    std::cout << "  " << std::left << std::setw(12) << s.stage
              << std::setw(10) << s.modeled_us << " us  ("
              << 100.0 * s.modeled_us / result.total_modeled_us << "%)\n";
  }

  // The same totals, as a Prometheus-style scrape.
  sharp::telemetry::Registry registry;
  registry.gauge("sharp_pipeline_total_modeled_us")
      .set(static_cast<std::int64_t>(result.total_modeled_us));
  for (const auto& s : result.stages) {
    registry.gauge("sharp_pipeline_stage_modeled_us_" + s.stage)
        .set(static_cast<std::int64_t>(s.modeled_us));
  }
  std::cout << "\nmetrics exposition:\n"
            << sharp::telemetry::expose_text(registry);

  if (sharp::telemetry::env_trace_path().empty()) {
    std::cout << "\nhint: SHARP_TRACE=trace.json " << argv[0]
              << " writes the timeline as a Chrome trace\n";
  }
  return 0;
}
