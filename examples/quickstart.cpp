// Quickstart: sharpen a synthetic photograph with the one-call API, save
// before/after images, and show the simulated CPU-vs-GPU timing.
//
//   ./examples/quickstart [output_dir]
//   ./examples/quickstart --dump-knobs   # machine-readable env-knob table
#include <iostream>
#include <string>

#include "image/generate.hpp"
#include "image/metrics.hpp"
#include "image/pnm.hpp"
#include "sharpen/env.hpp"
#include "sharpen/sharpen.hpp"

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--dump-knobs") {
    // One tab-separated "name<TAB>values" row per knob; consumed by
    // tools/check_env_docs.py to lint code/README agreement.
    for (const sharp::env::Knob& k : sharp::env::knobs()) {
      std::cout << k.name << '\t' << k.values << '\n';
    }
    return 0;
  }
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // 1. An input image. Any 8-bit grayscale image whose dimensions are
  //    multiples of 4 works; here we synthesize a natural-statistics one.
  const sharp::img::ImageU8 input = sharp::img::make_natural(512, 512, 7);

  // 2. Sharpen. Execution::gpu() runs the paper's optimized OpenCL-style
  //    pipeline on the simulated FirePro W8000; Execution::cpu() runs the
  //    host implementation and Execution::max_throughput(n) fans it out
  //    over n worker threads. Every backend produces identical pixels.
  sharp::SharpenParams params;  // amount/gamma/osc_gain are tunable
  const sharp::Execution exec = sharp::Execution::gpu();
  const sharp::img::ImageU8 sharpened = sharp::sharpen(input, params, exec);

  // 3. Inspect the effect.
  std::cout << "edge energy before: " << sharp::img::edge_energy(input)
            << "\nedge energy after:  " << sharp::img::edge_energy(sharpened)
            << '\n';

  // 4. Timing, from the calibrated device models.
  sharp::CpuPipeline cpu;
  sharp::GpuPipeline gpu;
  const double cpu_us = cpu.run(input, params).total_modeled_us;
  const double gpu_us = gpu.run(input, params).total_modeled_us;
  std::cout << "modeled CPU (i5-3470):    " << cpu_us / 1e3 << " ms\n"
            << "modeled GPU (W8000):      " << gpu_us / 1e3 << " ms\n"
            << "speedup:                  " << cpu_us / gpu_us << "x\n";

  // 5. Save viewable results.
  sharp::img::write_pgm(out_dir + "/quickstart_input.pgm", input);
  sharp::img::write_pgm(out_dir + "/quickstart_sharpened.pgm", sharpened);
  std::cout << "wrote " << out_dir << "/quickstart_{input,sharpened}.pgm\n";
  return 0;
}
