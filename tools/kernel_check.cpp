// kernel_check: dry-run every GPU pipeline configuration through the
// static contract analyzer without executing a single work-item.
//
// For each (options, size) in a pruned cross product of every
// enqueue-relevant PipelineOptions dimension, builds the exact kernel
// sequence FrameRunner::finish_frame would enqueue (sharp::gpu::
// build_launch_plan) and runs simcl::contract::analyze over every launch.
// The tool never constructs a CommandQueue and never calls Engine::run,
// so a clean exit is a static proof: every kernel the pipeline can ever
// launch is in-bounds, alias-free and barrier-safe for its geometry.
//
// Exit status: 0 = every launch proven safe; 1 = a diagnostic or a
// planned kernel without a contract; 2 = usage error.
//
//   kernel_check [--json] [--verbose]
//
// --json emits a machine-readable report on stdout (CI artifact);
// --verbose lists every analyzed configuration.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sharpen/gpu/launch_plan.hpp"
#include "sharpen/options.hpp"
#include "simcl/contract.hpp"
#include "simcl/device.hpp"
#include "simcl/kernel.hpp"
#include "simcl/queue.hpp"

namespace {

using sharp::Placement;
using sharp::PipelineOptions;
using sharp::SobelImpl;
using sharp::Stage2Method;
using sharp::StrengthEval;

const char* name_of(Placement p) {
  switch (p) {
    case Placement::kCpu: return "cpu";
    case Placement::kGpu: return "gpu";
    case Placement::kAuto: return "auto";
  }
  return "?";
}

const char* name_of(SobelImpl s) {
  switch (s) {
    case SobelImpl::kDefault: return "default";
    case SobelImpl::kScalar: return "scalar";
    case SobelImpl::kVec4: return "vec4";
    case SobelImpl::kLds: return "lds";
  }
  return "?";
}

/// One configuration of the sweep plus a human-readable label.
struct Case {
  PipelineOptions opt;
  int w = 0;
  int h = 0;

  [[nodiscard]] std::string label() const {
    std::string s = std::to_string(w) + "x" + std::to_string(h);
    s += opt.vectorize ? " vec4" : " scalar";
    s += opt.fuse_sharpness ? " fused" : " unfused";
    if (opt.use_image2d) s += " image2d";
    if (!opt.transfer_padded_only) s += " orig-upload";
    s += std::string(" sobel=") + name_of(opt.sobel_impl);
    s += std::string(" border=") + name_of(opt.border);
    s += std::string(" reduction=") + name_of(opt.reduction);
    if (opt.reduction != Placement::kCpu) {
      s += std::string("/") + name_of(opt.reduction_stage2);
      s += opt.stage2_method == Stage2Method::kAtomic ? "+atomic" : "+tree";
    }
    s += opt.strength == StrengthEval::kLut ? " lut" : " pow";
    return s;
  }
};

/// The pruned cross product: every dimension that changes which kernels
/// are enqueued or how they are launched, with combinations that a
/// dimension cannot influence (e.g. stage-2 method under a CPU reduction)
/// collapsed to one representative.
std::vector<Case> build_matrix() {
  // 100x52 is deliberately not a multiple of the 16x16 tile: it exercises
  // the rounded-up launches whose safety rests on the declared guard
  // domains rather than on exact geometry.
  constexpr struct { int w, h; } kSizes[] = {{64, 64}, {100, 52}, {512, 384}};
  constexpr Placement kPlacements[] = {Placement::kCpu, Placement::kGpu,
                                       Placement::kAuto};
  constexpr StrengthEval kStrengths[] = {StrengthEval::kPow,
                                         StrengthEval::kLut};
  constexpr Stage2Method kMethods[] = {Stage2Method::kTreeKernel,
                                       Stage2Method::kAtomic};

  std::vector<Case> cases;
  for (const auto& size : kSizes) {
    for (const bool image2d : {false, true}) {
      for (const bool fuse : image2d ? std::vector<bool>{true}
                                     : std::vector<bool>{false, true}) {
        const std::vector<SobelImpl> sobels =
            image2d ? std::vector<SobelImpl>{SobelImpl::kDefault}
                    : std::vector<SobelImpl>{SobelImpl::kDefault,
                                             SobelImpl::kScalar,
                                             SobelImpl::kVec4, SobelImpl::kLds};
        for (const bool vectorize : {false, true}) {
          for (const bool padded_only : {false, true}) {
            for (const SobelImpl sobel : sobels) {
              for (const Placement border : kPlacements) {
                for (const StrengthEval strength : kStrengths) {
                  PipelineOptions base;
                  base.use_image2d = image2d;
                  base.fuse_sharpness = fuse;
                  base.vectorize = vectorize;
                  base.transfer_padded_only = padded_only;
                  base.sobel_impl = sobel;
                  base.border = border;
                  base.strength = strength;

                  {  // reduction on the CPU: stage 2 never launches
                    PipelineOptions o = base;
                    o.reduction = Placement::kCpu;
                    cases.push_back({o, size.w, size.h});
                  }
                  for (const Placement stage2 : kPlacements) {
                    for (const Stage2Method method : kMethods) {
                      PipelineOptions o = base;
                      o.reduction = Placement::kGpu;
                      o.reduction_stage2 = stage2;
                      o.stage2_method = method;
                      // Forces stage 2 onto the GPU even at these small
                      // partial counts, so the kAuto row still exercises
                      // both sides of the threshold across sizes.
                      if (stage2 == Placement::kAuto) {
                        o.stage2_gpu_threshold = 100;
                      }
                      cases.push_back({o, size.w, size.h});
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return cases;
}

/// One finding, attributed all the way down to the argument.
struct Finding {
  std::string config;
  std::string stage;
  std::string kernel;
  std::string detail;  ///< analyzer diagnostic or "missing contract"
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: kernel_check [--json] [--verbose]\n");
      return 0;
    } else {
      std::fprintf(stderr, "kernel_check: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  // One context for the whole sweep; plans allocate (and release) their
  // device objects from it but nothing is ever enqueued on it.
  simcl::Context ctx(simcl::amd_firepro_w8000());
  const std::vector<Case> cases = build_matrix();

  std::vector<Finding> findings;
  std::size_t launches = 0;
  for (const Case& c : cases) {
    const sharp::gpu::LaunchPlan plan =
        sharp::gpu::build_launch_plan(ctx, c.opt, c.w, c.h);
    for (const sharp::gpu::PlannedLaunch& pl : plan.launches()) {
      ++launches;
      if (!pl.kernel.contract) {
        findings.push_back(
            {c.label(), pl.stage, pl.kernel.name, "missing contract"});
        continue;
      }
      const simcl::contract::Report report =
          simcl::contract::analyze(pl.kernel, pl.cfg, ctx.device());
      for (const simcl::contract::Diagnostic& d : report.diagnostics) {
        std::string detail = simcl::contract::to_string(d.kind);
        if (!d.arg.empty()) detail += std::string(" arg=") + d.arg;
        if (!d.object.empty()) detail += std::string(" object=") + d.object;
        detail += std::string(": ") + d.message;
        findings.push_back({c.label(), pl.stage, pl.kernel.name, detail});
      }
    }
    if (verbose && !json) {
      std::printf("checked %-70s %zu launches\n", c.label().c_str(),
                  plan.launches().size());
    }
  }

  if (json) {
    std::printf("{\n  \"configs\": %zu,\n  \"launches\": %zu,\n",
                cases.size(), launches);
    std::printf("  \"kernels_executed\": 0,\n  \"findings\": [");
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::printf(
          "%s\n    {\"config\": \"%s\", \"stage\": \"%s\", "
          "\"kernel\": \"%s\", \"detail\": \"%s\"}",
          i == 0 ? "" : ",", json_escape(f.config).c_str(),
          json_escape(f.stage).c_str(), json_escape(f.kernel).c_str(),
          json_escape(f.detail).c_str());
    }
    std::printf("%s],\n  \"ok\": %s\n}\n", findings.empty() ? "" : "\n  ",
                findings.empty() ? "true" : "false");
  } else {
    std::printf(
        "kernel_check: %zu configurations, %zu kernel launches analyzed, "
        "0 executed\n",
        cases.size(), launches);
    for (const Finding& f : findings) {
      std::fprintf(stderr, "FAIL [%s] stage=%s kernel=%s: %s\n",
                   f.config.c_str(), f.stage.c_str(), f.kernel.c_str(),
                   f.detail.c_str());
    }
    if (findings.empty()) {
      std::printf("kernel_check: every launch proven safe\n");
    } else {
      std::printf("kernel_check: %zu findings\n", findings.size());
    }
  }
  return findings.empty() ? 0 : 1;
}
