#!/usr/bin/env python3
"""CI gate for SHARP_TRACE / SHARP_TRACE_STREAM output.

Usage: check_trace.py TRACE_JSON_OR_JSONL [BENCH_FIG13_JSON]

Validates that the Chrome trace written by the telemetry layer is
well-formed JSON with a non-empty set of complete ("ph":"X") span events
and the expected process-name metadata. Accepts both the one-shot export
(a JSON array of events) and the streaming sink's newline-delimited form
(one complete event object per line, as written to $SHARP_TRACE_STREAM). When the fig13 breakdown JSON is
also given, cross-checks the trace against it: per stage, the summed
durations of bridged device spans (pid 2, keyed by category) plus modeled
CPU spans (pid 3, keyed by name) must agree with the summed modeled_us
the bench reported, within 5%.

Exits non-zero with a message on the first failure.
"""

import collections
import json
import sys

REL_TOLERANCE = 0.05


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_events(path: str) -> list:
    """One-shot traces are a JSON array; streamed traces are JSONL (one
    event object per line). A single-object file is treated as JSONL of
    length one."""
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    try:
        parsed = json.loads(text)
        if isinstance(parsed, list):
            return parsed
        if isinstance(parsed, dict):
            return [parsed]
        fail("trace root is not an array")
    except json.JSONDecodeError:
        pass  # not a single document: try line-by-line
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: neither trace JSON nor JSONL: {e}")
        if not isinstance(event, dict):
            fail(f"{path}:{lineno}: JSONL line is not an event object")
        events.append(event)
    return events


def main(argv: list[str]) -> None:
    if len(argv) not in (2, 3):
        fail(f"usage: {argv[0]} TRACE_JSON_OR_JSONL [BENCH_FIG13_JSON]")

    events = load_events(argv[1])

    spans = [e for e in events if e.get("ph") == "X"]
    metadata = [e for e in events if e.get("ph") == "M"]
    if not spans:
        fail("trace contains no complete ('ph':'X') span events")
    process_names = {
        e["args"]["name"]
        for e in metadata
        if e.get("name") == "process_name"
    }
    if not process_names:
        fail("trace has no process_name metadata")
    for e in spans:
        for key in ("name", "cat", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"span missing '{key}': {e}")
        if e["dur"] < 0:
            fail(f"span has negative duration: {e}")

    print(
        f"check_trace: {len(spans)} spans, {len(metadata)} metadata "
        f"records, processes: {sorted(process_names)}"
    )

    if len(argv) == 2:
        return

    try:
        with open(argv[2], encoding="utf-8") as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {argv[2]}: {e}")

    expected = collections.defaultdict(float)
    for rec in records:
        expected[rec["stage"]] += rec["modeled_us"]
    if not expected:
        fail(f"{argv[2]} contains no stage records")

    # Device spans carry the stage as their category; modeled CPU spans
    # carry it as their name (see DESIGN.md "Telemetry").
    actual = collections.defaultdict(float)
    for e in spans:
        if e["pid"] == 2:
            actual[e["cat"]] += e["dur"]
        elif e["pid"] == 3:
            actual[e["name"]] += e["dur"]

    for stage, want in sorted(expected.items()):
        got = actual.get(stage, 0.0)
        rel = abs(got - want) / want if want > 0 else abs(got)
        status = "ok" if rel <= REL_TOLERANCE else "MISMATCH"
        print(
            f"check_trace: stage {stage:12s} bench {want:12.1f} us  "
            f"trace {got:12.1f} us  ({100 * rel:.2f}% off) {status}"
        )
        if rel > REL_TOLERANCE:
            fail(
                f"stage '{stage}': trace total {got:.1f} us disagrees "
                f"with bench total {want:.1f} us by more than "
                f"{100 * REL_TOLERANCE:.0f}%"
            )
    print("check_trace: trace agrees with the fig13 stage breakdown")


if __name__ == "__main__":
    main(sys.argv)
