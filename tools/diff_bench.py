#!/usr/bin/env python3
"""Diff two BENCH_*.json perf-trajectory files record by record.

Usage: diff_bench.py BASELINE_JSON CURRENT_JSON [--threshold PCT]
                     [--ignore REGEX]

Both files must be JSON arrays of flat records as written by
report::JsonArray (see bench/common.hpp). Records are matched across the
two files by their identity fields — every string-, integer- or
bool-valued field (e.g. "bench", "size", "stage", "version") — and each
float-valued metric of a matched pair is reported as an absolute and
relative delta.

Fields whose name matches --ignore (default: "wall") are excluded from
the report and the gate; wall-clock numbers are machine-dependent while
the modeled *_us metrics are deterministic, which is what makes the
committed baselines under bench/baselines/ meaningful to diff against.

With --threshold the script becomes a CI gate: it exits non-zero when
any compared metric deviates by more than PCT percent, when a baseline
record has no counterpart (coverage shrank), or when the metric sets of
a matched pair differ. Records present only in the current set are
reported as "new, no baseline" rows (with their metric values, so the
report can seed the next baseline) and never fail the gate.

Exit codes: 0 clean, 1 regression/mismatch, 2 usage or parse error.
"""

import argparse
import json
import re
import sys


def fail(msg: str) -> None:
    print(f"diff_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(2)


def load_records(path: str) -> list[dict]:
    try:
        with open(path, encoding="utf-8") as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    if not isinstance(records, list) or not all(
        isinstance(r, dict) for r in records
    ):
        fail(f"{path}: root is not an array of records")
    return records


def identity(record: dict) -> tuple:
    """The (key, value) pairs that name a record: everything non-float."""
    return tuple(
        sorted(
            (k, v)
            for k, v in record.items()
            if isinstance(v, (str, bool)) or isinstance(v, int)
        )
    )


def metrics(record: dict, ignore: re.Pattern) -> dict:
    return {
        k: v
        for k, v in record.items()
        if isinstance(v, float) and not isinstance(v, bool)
        and not ignore.search(k)
    }


def index_by_identity(records: list[dict], path: str) -> dict:
    out = {}
    for r in records:
        key = identity(r)
        if key in out:
            fail(f"{path}: duplicate record identity {dict(key)}")
        out[key] = r
    return out


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="diff_bench.py",
        description="Diff two BENCH_*.json files record by record.",
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="fail when any metric deviates by more than PCT percent",
    )
    parser.add_argument(
        "--ignore",
        default="wall",
        metavar="REGEX",
        help="exclude metrics whose name matches (default: %(default)s)",
    )
    args = parser.parse_args(argv[1:])
    ignore = re.compile(args.ignore)

    base = index_by_identity(load_records(args.baseline), args.baseline)
    cur = index_by_identity(load_records(args.current), args.current)

    regressions = []
    rows = []
    for key, b in base.items():
        label = " ".join(str(v) for _, v in key)
        c = cur.get(key)
        if c is None:
            regressions.append(f"record gone from current set: {label}")
            continue
        bm, cm = metrics(b, ignore), metrics(c, ignore)
        if bm.keys() != cm.keys():
            regressions.append(
                f"{label}: metric set changed "
                f"({sorted(bm.keys() ^ cm.keys())})"
            )
            continue
        for name in sorted(bm):
            old, new = bm[name], cm[name]
            delta = new - old
            if old != 0:
                pct = 100.0 * delta / old
            elif delta == 0:
                pct = 0.0
            else:
                pct = float("inf") if delta > 0 else float("-inf")
            rows.append((label, name, old, new, pct))
            if args.threshold is not None and abs(pct) > args.threshold:
                regressions.append(
                    f"{label}: {name} {old:g} -> {new:g} ({pct:+.2f}%)"
                )
    # Records only the current set has are informational, never a gate
    # failure: new coverage (a new bench variant) must not require the
    # baseline to be regenerated first. They render with their metric
    # values so a reviewer can seed the baseline from the report.
    extra_rows = []
    for key in cur:
        if key in base:
            continue
        label = " ".join(str(v) for _, v in key)
        for name, value in sorted(metrics(cur[key], ignore).items()):
            extra_rows.append((label, name, value))

    width = max(
        (len(r[0]) for r in rows + extra_rows), default=5
    )
    nwidth = max((len(r[1]) for r in rows + extra_rows), default=6)
    print(f"{'record':<{width}}  {'metric':<{nwidth}}  "
          f"{'baseline':>16}  {'current':>14}  {'delta':>9}")
    for label, name, old, new, pct in rows:
        print(f"{label:<{width}}  {name:<{nwidth}}  "
              f"{old:>16.4f}  {new:>14.4f}  {pct:>+8.2f}%")
    for label, name, value in extra_rows:
        print(f"{label:<{width}}  {name:<{nwidth}}  "
              f"{'new, no baseline':>16}  {value:>14.4f}  {'-':>9}")

    if args.threshold is not None and regressions:
        print(f"\ndiff_bench: {len(regressions)} regression(s) beyond "
              f"{args.threshold:g}%:", file=sys.stderr)
        for msg in regressions:
            print(f"  {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
