#!/usr/bin/env python3
"""CI gate for the /metrics endpoint's Prometheus text exposition.

Usage: check_metrics.py METRICS_TXT [--require FAMILY ...]

Validates the scrape body against the Prometheus text-format grammar:

  * every line is blank, a '# HELP <name> <text>' / '# TYPE <name> <type>'
    comment, or a sample '<name>[{labels}] <value>';
  * metric and label names match the Prometheus identifier charset;
  * sample values parse as floats (+Inf/-Inf/NaN included);
  * a family's TYPE comment precedes its first sample;
  * every histogram family has _bucket/_sum/_count series, a le="+Inf"
    bucket, and cumulative (non-decreasing) bucket counts.

--require FAMILY asserts the family is present with at least one sample
(histogram families count their _bucket/_sum/_count series). Exits
non-zero with a message on the first failure.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def fail(msg: str) -> None:
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_value(raw: str, where: str) -> float:
    try:
        return float(raw)  # accepts +Inf / -Inf / NaN spellings
    except ValueError:
        fail(f"{where}: not a float value: {raw!r}")
    raise AssertionError  # unreachable


def family_of(name: str, types: dict) -> str:
    """Histogram series (and the emitter's gauge `_hwm` high-water-mark
    sibling) fold back onto their declared family name."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    if name.endswith("_hwm") and types.get(name[: -len("_hwm")]) == "gauge":
        return name[: -len("_hwm")]
    return name


def main(argv: list[str]) -> None:
    args = argv[1:]
    required = []
    if "--require" in args:
        at = args.index("--require")
        required = args[at + 1 :]
        args = args[:at]
    if len(args) != 1:
        fail(f"usage: {argv[0]} METRICS_TXT [--require FAMILY ...]")

    try:
        with open(args[0], encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read {args[0]}: {e}")

    types: dict[str, str] = {}
    samples: dict[str, int] = {}
    buckets: dict[str, list[tuple[float, float]]] = {}

    for i, line in enumerate(lines, start=1):
        where = f"line {i}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail(f"{where}: malformed comment: {line!r}")
            name = parts[2]
            if not NAME_RE.match(name):
                fail(f"{where}: bad metric name in comment: {name!r}")
            if parts[1] == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in TYPES:
                    fail(f"{where}: unknown TYPE {kind!r} for {name}")
                if name in types:
                    fail(f"{where}: duplicate TYPE for {name}")
                types[name] = kind
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{where}: malformed sample: {line!r}")
        name = m.group("name")
        labels = {}
        if m.group("labels"):
            for item in m.group("labels").split(","):
                lm = LABEL_RE.match(item.strip())
                if not lm:
                    fail(f"{where}: malformed label: {item!r}")
                labels[lm.group(1)] = lm.group(2)
        value = parse_value(m.group("value"), where)

        family = family_of(name, types)
        if family in types and family not in samples:
            pass  # first sample of a declared family: fine, TYPE came first
        if family not in types:
            # Samples before their TYPE comment (or without one) break the
            # per-family grouping Prometheus expects from our emitter.
            fail(f"{where}: sample {name!r} has no preceding TYPE comment")
        samples[family] = samples.get(family, 0) + 1

        if types.get(family) == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                fail(f"{where}: histogram bucket without le label: {line!r}")
            le = parse_value(labels["le"], where)
            buckets.setdefault(family, []).append((le, value))

    for family, series in sorted(buckets.items()):
        if not any(math.isinf(le) and le > 0 for le, _ in series):
            fail(f"histogram {family} has no le=\"+Inf\" bucket")
        counts = [v for _, v in series]  # emitter writes buckets in order
        if any(b < a for a, b in zip(counts, counts[1:])):
            fail(f"histogram {family} bucket counts are not cumulative")
        for suffix in ("_sum", "_count"):
            # _sum/_count are folded into the family's sample tally; make
            # sure they were actually present.
            if not any(
                re.match(rf"^{re.escape(family + suffix)}(\s|{{)", line)
                for line in lines
            ):
                fail(f"histogram {family} is missing {family + suffix}")

    for family in required:
        if family not in types:
            fail(f"required family {family!r} is not declared")
        if samples.get(family, 0) == 0:
            fail(f"required family {family!r} has no samples")

    print(
        f"check_metrics: {len(types)} families, "
        f"{sum(samples.values())} samples, "
        f"{len(buckets)} histograms ok"
        + (f", required present: {', '.join(required)}" if required else "")
    )


if __name__ == "__main__":
    main(sys.argv)
