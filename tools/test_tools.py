#!/usr/bin/env python3
"""Unit tests for the CI gate scripts (diff_bench.py, check_trace.py,
check_metrics.py).

Run directly (python3 tools/test_tools.py) or via ctest (PyTools.*).
Each test drives a script end to end through a subprocess, asserting the
documented exit codes: the gates' contract is their exit status, so that
is what is pinned here. Uses only the standard library (unittest), which
is all the container has.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOLS = pathlib.Path(__file__).resolve().parent


def run_script(script, *args):
    return subprocess.run(
        [sys.executable, str(TOOLS / script), *map(str, args)],
        capture_output=True,
        text=True,
        check=False,
    )


class ScriptTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = pathlib.Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write_json(self, name, payload):
        path = self.tmp / name
        path.write_text(json.dumps(payload))
        return path


def bench_record(stage, modeled, wall=1.0, size=512):
    return {
        "bench": "fig13",
        "stage": stage,
        "size": size,
        "modeled_us": modeled,
        "wall_us": wall,
    }


class DiffBenchTest(ScriptTest):
    def diff(self, baseline, current, *extra):
        return run_script(
            "diff_bench.py",
            self.write_json("baseline.json", baseline),
            self.write_json("current.json", current),
            *extra,
        )

    def test_identical_files_pass(self):
        recs = [bench_record("sobel", 100.0), bench_record("center", 50.0)]
        r = self.diff(recs, recs, "--threshold", 5)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("sobel", r.stdout)

    def test_small_drift_within_threshold_passes(self):
        r = self.diff(
            [bench_record("sobel", 100.0)],
            [bench_record("sobel", 104.0)],
            "--threshold", 5,
        )
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_regression_beyond_threshold_fails(self):
        r = self.diff(
            [bench_record("sobel", 100.0)],
            [bench_record("sobel", 110.0)],
            "--threshold", 5,
        )
        self.assertEqual(r.returncode, 1)
        self.assertIn("modeled_us", r.stderr)
        self.assertIn("+10.00%", r.stderr)

    def test_wall_clock_metrics_are_ignored_by_default(self):
        r = self.diff(
            [bench_record("sobel", 100.0, wall=1.0)],
            [bench_record("sobel", 100.0, wall=9000.0)],
            "--threshold", 5,
        )
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_missing_record_fails_the_gate(self):
        r = self.diff(
            [bench_record("sobel", 100.0), bench_record("center", 50.0)],
            [bench_record("sobel", 100.0)],
            "--threshold", 5,
        )
        self.assertEqual(r.returncode, 1)
        self.assertIn("record gone", r.stderr)

    def test_changed_metric_set_fails_the_gate(self):
        changed = dict(bench_record("sobel", 100.0))
        changed["extra_us"] = 1.0
        r = self.diff(
            [bench_record("sobel", 100.0)], [changed], "--threshold", 5
        )
        self.assertEqual(r.returncode, 1)
        self.assertIn("metric set changed", r.stderr)

    def test_new_record_is_reported_but_passes(self):
        r = self.diff(
            [bench_record("sobel", 100.0)],
            [bench_record("sobel", 100.0), bench_record("center", 50.0)],
            "--threshold", 5,
        )
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("new, no baseline", r.stdout)

    def test_new_record_row_carries_its_metric_values(self):
        # Current-only records render as table rows with their metric
        # values (so the report can seed the next baseline), one row per
        # non-ignored metric, and never trip the gate.
        r = self.diff(
            [bench_record("sobel", 100.0)],
            [bench_record("sobel", 100.0), bench_record("center", 50.5)],
            "--threshold", 0.01,
        )
        self.assertEqual(r.returncode, 0, r.stderr)
        row = next(
            line for line in r.stdout.splitlines()
            if "new, no baseline" in line
        )
        self.assertIn("center", row)
        self.assertIn("modeled_us", row)
        self.assertIn("50.5000", row)
        # wall_us is ignored by default: no second "new" row for it.
        self.assertEqual(r.stdout.count("new, no baseline"), 1)

    def test_without_threshold_deviations_only_report(self):
        r = self.diff(
            [bench_record("sobel", 100.0)], [bench_record("sobel", 200.0)]
        )
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_malformed_json_is_a_usage_error(self):
        bad = self.tmp / "bad.json"
        bad.write_text("{not json")
        ok = self.write_json("ok.json", [bench_record("sobel", 1.0)])
        r = run_script("diff_bench.py", bad, ok)
        self.assertEqual(r.returncode, 2)

    def test_duplicate_identity_is_a_usage_error(self):
        rec = bench_record("sobel", 100.0)
        r = self.diff([rec, rec], [rec])
        self.assertEqual(r.returncode, 2)
        self.assertIn("duplicate", r.stderr)


def span(name, cat, dur, pid=2, tid=1, ts=0.0):
    return {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": tid,
    }


def process_meta(pid=2, name="simcl device"):
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": name},
    }


class CheckTraceTest(ScriptTest):
    def check(self, trace, bench=None):
        args = [self.write_json("trace.json", trace)]
        if bench is not None:
            args.append(self.write_json("fig13.json", bench))
        return run_script("check_trace.py", *args)

    def test_wellformed_trace_passes(self):
        r = self.check([process_meta(), span("sobel_vec4", "sobel", 10.0)])
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("1 spans", r.stdout)

    def test_non_array_root_fails(self):
        r = self.check({"traceEvents": []})
        self.assertEqual(r.returncode, 1)

    def test_trace_without_spans_fails(self):
        r = self.check([process_meta()])
        self.assertEqual(r.returncode, 1)
        self.assertIn("no complete", r.stderr)

    def test_trace_without_process_metadata_fails(self):
        r = self.check([span("sobel_vec4", "sobel", 10.0)])
        self.assertEqual(r.returncode, 1)
        self.assertIn("process_name", r.stderr)

    def test_span_missing_field_fails(self):
        bad = span("sobel_vec4", "sobel", 10.0)
        del bad["tid"]
        r = self.check([process_meta(), bad])
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing 'tid'", r.stderr)

    def test_negative_duration_fails(self):
        r = self.check([process_meta(), span("sobel_vec4", "sobel", -1.0)])
        self.assertEqual(r.returncode, 1)
        self.assertIn("negative", r.stderr)

    def test_bench_agreement_within_tolerance_passes(self):
        trace = [
            process_meta(),
            span("sobel_vec4", "sobel", 98.0, pid=2),
            span("reduction", "host", 49.0, pid=3),
        ]
        bench = [
            bench_record("sobel", 100.0),
            bench_record("reduction", 50.0),
        ]
        r = self.check(trace, bench)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("agrees", r.stdout)

    def test_bench_disagreement_fails(self):
        trace = [process_meta(), span("sobel_vec4", "sobel", 80.0, pid=2)]
        bench = [bench_record("sobel", 100.0)]
        r = self.check(trace, bench)
        self.assertEqual(r.returncode, 1)
        self.assertIn("disagrees", r.stderr)

    # --- streamed JSONL traces (SHARP_TRACE_STREAM) ---------------------

    def write_jsonl(self, name, events):
        path = self.tmp / name
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        return path

    def test_streamed_jsonl_trace_passes(self):
        path = self.write_jsonl(
            "trace.jsonl",
            [process_meta(), span("sobel_vec4", "sobel", 10.0),
             span("frame.finish", "frame", 5.0, pid=1)],
        )
        r = run_script("check_trace.py", path)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("2 spans", r.stdout)

    def test_jsonl_with_corrupt_line_fails(self):
        path = self.tmp / "trace.jsonl"
        path.write_text(
            json.dumps(process_meta()) + "\n{truncated\n"
        )
        r = run_script("check_trace.py", path)
        self.assertEqual(r.returncode, 1)
        self.assertIn("JSONL", r.stderr)

    def test_jsonl_trace_without_spans_fails(self):
        path = self.write_jsonl("trace.jsonl", [process_meta()])
        r = run_script("check_trace.py", path)
        self.assertEqual(r.returncode, 1)
        self.assertIn("no complete", r.stderr)


METRICS_OK = """\
# HELP sharp_service_submitted_total requests accepted
# TYPE sharp_service_submitted_total counter
sharp_service_submitted_total 4
# TYPE sharp_service_queue_depth gauge
sharp_service_queue_depth 0
sharp_service_queue_depth_hwm 3
# TYPE sharp_service_e2e_latency_us histogram
sharp_service_e2e_latency_us_bucket{le="1"} 0
sharp_service_e2e_latency_us_bucket{le="100"} 2
sharp_service_e2e_latency_us_bucket{le="+Inf"} 4
sharp_service_e2e_latency_us_sum 350.5
sharp_service_e2e_latency_us_count 4
"""


class CheckMetricsTest(ScriptTest):
    def check_text(self, text, *extra):
        path = self.tmp / "metrics.txt"
        path.write_text(text)
        return run_script("check_metrics.py", path, *extra)

    def test_valid_exposition_passes(self):
        r = self.check_text(METRICS_OK)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("histograms ok", r.stdout)

    def test_required_families_are_checked(self):
        r = self.check_text(
            METRICS_OK,
            "--require",
            "sharp_service_submitted_total",
            "sharp_service_e2e_latency_us",
        )
        self.assertEqual(r.returncode, 0, r.stderr)
        r = self.check_text(
            METRICS_OK, "--require", "sharp_service_missing_total"
        )
        self.assertEqual(r.returncode, 1)
        self.assertIn("required family", r.stderr)

    def test_sample_without_type_comment_fails(self):
        r = self.check_text("orphan_metric 1\n")
        self.assertEqual(r.returncode, 1)
        self.assertIn("no preceding TYPE", r.stderr)

    def test_malformed_sample_fails(self):
        r = self.check_text(
            "# TYPE x counter\nx not_a_number\n"
        )
        self.assertEqual(r.returncode, 1)
        self.assertIn("not a float", r.stderr)

    def test_bad_metric_name_fails(self):
        r = self.check_text("# TYPE 9bad counter\n9bad 1\n")
        self.assertEqual(r.returncode, 1)
        self.assertIn("bad metric name", r.stderr)

    def test_histogram_without_inf_bucket_fails(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="1"} 0\n'
            "lat_sum 0\nlat_count 0\n"
        )
        r = self.check_text(text)
        self.assertEqual(r.returncode, 1)
        self.assertIn("+Inf", r.stderr)

    def test_non_cumulative_histogram_fails(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="1"} 5\n'
            'lat_bucket{le="+Inf"} 3\n'
            "lat_sum 0\nlat_count 3\n"
        )
        r = self.check_text(text)
        self.assertEqual(r.returncode, 1)
        self.assertIn("cumulative", r.stderr)

    def test_histogram_missing_sum_fails(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="+Inf"} 3\n'
            "lat_count 3\n"
        )
        r = self.check_text(text)
        self.assertEqual(r.returncode, 1)
        self.assertIn("lat_sum", r.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
