#!/usr/bin/env python3
"""Lint agreement of the environment-knob documentation surfaces.

The process has exactly one authoritative knob table — sharp::env::knobs()
— but it is documented in three places that can silently drift:

  1. the runtime table itself, dumped via `quickstart --dump-knobs`
     (one "name<TAB>values" row per knob),
  2. the README.md environment-variable table (rows of the form
     "| `NAME` | values | effect |"),
  3. the header comment of src/sharpen/include/sharpen/env.hpp
     ("//   NAME  description" lines).

This script fails (exit 1) when any knob is present in one surface and
missing from another, so adding a knob (e.g. SIMCL_CONTRACT) without
documenting it everywhere turns CI red.

usage: check_env_docs.py <quickstart-binary> [--repo-root DIR]
"""

import argparse
import pathlib
import re
import subprocess
import sys

KNOB_NAME = re.compile(r"^(SHARP|SIMCL)_[A-Z0-9_]+$")


def knobs_from_binary(quickstart):
    out = subprocess.run(
        [quickstart, "--dump-knobs"],
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    knobs = set()
    for line in out.splitlines():
        name = line.split("\t", 1)[0].strip()
        if not KNOB_NAME.match(name):
            raise SystemExit(
                f"--dump-knobs produced a malformed row: {line!r}"
            )
        knobs.add(name)
    return knobs


def knobs_from_readme(readme):
    # Table rows whose first cell is a backticked env-style name.
    row = re.compile(r"^\|\s*`((?:SHARP|SIMCL)_[A-Z0-9_]+)`\s*\|")
    knobs = set()
    for line in readme.read_text().splitlines():
        m = row.match(line)
        if m:
            knobs.add(m.group(1))
    return knobs


def knobs_from_header(header):
    # "//   NAME  description" lines of the env.hpp leading comment.
    line_re = re.compile(r"^//\s{3}((?:SHARP|SIMCL)_[A-Z0-9_]+)\s")
    knobs = set()
    for line in header.read_text().splitlines():
        m = line_re.match(line)
        if m:
            knobs.add(m.group(1))
    return knobs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("quickstart", help="path to the quickstart binary")
    ap.add_argument(
        "--repo-root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
    )
    args = ap.parse_args()

    surfaces = {
        "knobs() (via --dump-knobs)": knobs_from_binary(args.quickstart),
        "README.md": knobs_from_readme(args.repo_root / "README.md"),
        "env.hpp": knobs_from_header(
            args.repo_root / "src/sharpen/include/sharpen/env.hpp"
        ),
    }
    for name, knobs in surfaces.items():
        if not knobs:
            raise SystemExit(f"{name}: found no knobs — parser broken?")

    union = set().union(*surfaces.values())
    failed = False
    for name, knobs in surfaces.items():
        missing = sorted(union - knobs)
        if missing:
            failed = True
            print(f"FAIL {name} is missing: {', '.join(missing)}")
    if failed:
        return 1
    names = sorted(union)
    print(f"env docs agree on {len(names)} knobs: {', '.join(names)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
